package persist

import (
	"hash/crc32"

	"leo/internal/core"
	"leo/internal/matrix"
)

// Wire framing shared by snapshots and journal records: an 8-byte magic, a
// format version byte, then a CRC-32C (Castagnoli — hardware-accelerated on
// both amd64 and arm64) over the payload. A snapshot whose checksum does not
// match is indistinguishable from a torn write and is treated the same way:
// fall back to the previous generation.
const (
	snapMagic    = "LEOSNAP\x01"
	snapVersion  = 1
	maxSnapName  = 4096    // session names are controller-chosen, short
	maxSnapBytes = 1 << 30 // refuse absurd snapshots outright
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SessionEntry is one named estimator's persisted state. Digest is the
// fingerprint of the core.Prior the session was opened from: restore refuses
// to feed a posterior fitted against one prior into a session derived from a
// different one (see core.Prior.Digest).
type SessionEntry struct {
	Name   string
	Digest uint64
	State  *core.SessionState
}

// ControllerState is the controller-level planning state captured alongside
// the sessions: the estimate vectors the planner consumes and the probe
// observations behind them. Restoring it lets a recovered controller plan
// immediately — without a fresh calibration window — even when the journal
// records covering the snapshot have been lost to corruption.
type ControllerState struct {
	Perf    []float64
	Power   []float64
	ObsIdx  []int
	ObsPerf []float64
}

// Snapshot is the durable image of the estimation state at a point in time:
// every live session plus Seq, the number of journaled windows already
// folded into those sessions. Journal records with Seq greater than this are
// replayed on top during recovery; records at or below it are already
// reflected and are skipped. Rung records where on the degradation ladder
// the sessions were fitted, so recovery resumes at the same tier.
type Snapshot struct {
	Seq        uint64
	Rung       int
	Controller *ControllerState
	Sessions   []SessionEntry
}

// EncodeSnapshot renders the snapshot into its wire form:
//
//	magic(8) version(1) crc32c(4) payloadLen(4) payload
//
// The checksum covers the payload only — the header fields are validated
// structurally.
func EncodeSnapshot(s *Snapshot) []byte {
	var p enc
	p.u64(s.Seq)
	p.u64(uint64(int64(s.Rung)))
	encodeControllerState(&p, s.Controller)
	p.u32(uint32(len(s.Sessions)))
	for _, se := range s.Sessions {
		p.str(se.Name)
		p.u64(se.Digest)
		encodeSessionState(&p, se.State)
	}

	var out enc
	out.buf = append(out.buf, snapMagic...)
	out.u8(snapVersion)
	out.u32(crc32.Checksum(p.buf, castagnoli))
	out.u32(uint32(len(p.buf)))
	out.buf = append(out.buf, p.buf...)
	return out.buf
}

// DecodeSnapshot parses and verifies a snapshot produced by EncodeSnapshot.
// Any malformation — wrong magic, unknown version, bad checksum, truncated
// or trailing bytes, impossible lengths — returns an *ErrCorrupt; the
// decoder never panics regardless of input.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) > maxSnapBytes {
		return nil, corrupt("snapshot", "size %d exceeds limit", len(b))
	}
	d := &dec{buf: b, what: "snapshot"}
	magic := d.take(len(snapMagic))
	if d.err != nil {
		return nil, d.err
	}
	if string(magic) != snapMagic {
		return nil, corrupt("snapshot", "bad magic %q", magic)
	}
	if v := d.u8(); d.err == nil && v != snapVersion {
		return nil, corrupt("snapshot", "unsupported version %d", v)
	}
	sum := d.u32()
	plen := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	payload := d.take(plen)
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, corrupt("snapshot", "%d trailing bytes", d.remaining())
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, corrupt("snapshot", "checksum mismatch: %08x != %08x", got, sum)
	}

	p := &dec{buf: payload, what: "snapshot payload"}
	s := &Snapshot{Seq: p.u64(), Rung: int(int64(p.u64()))}
	s.Controller = decodeControllerState(p)
	count := int(p.u32())
	if p.err != nil {
		return nil, p.err
	}
	// Each session entry is at least name-len + digest + the state's fixed
	// fields; a cheap floor that stops a flipped count from preallocating.
	if count < 0 || count > p.remaining() {
		return nil, corrupt("snapshot payload", "session count %d exceeds remaining %d bytes", count, p.remaining())
	}
	for i := 0; i < count; i++ {
		var se SessionEntry
		se.Name = p.str(maxSnapName)
		se.Digest = p.u64()
		se.State = decodeSessionState(p)
		if p.err != nil {
			return nil, p.err
		}
		s.Sessions = append(s.Sessions, se)
	}
	if p.remaining() != 0 {
		return nil, corrupt("snapshot payload", "%d trailing bytes", p.remaining())
	}
	return s, nil
}

func encodeControllerState(p *enc, cs *ControllerState) {
	if cs == nil {
		p.bool(false) // present flag
		return
	}
	p.bool(true)
	p.f64s(cs.Perf)
	p.f64s(cs.Power)
	p.ints(cs.ObsIdx)
	p.f64s(cs.ObsPerf)
}

func decodeControllerState(p *dec) *ControllerState {
	present := p.bool()
	if p.err != nil || !present {
		return nil
	}
	cs := &ControllerState{}
	cs.Perf = p.f64s()
	cs.Power = p.f64s()
	cs.ObsIdx = p.ints()
	cs.ObsPerf = p.f64s()
	if p.err != nil {
		return nil
	}
	return cs
}

func encodeSessionState(p *enc, st *core.SessionState) {
	if st == nil {
		p.bool(false) // present flag
		return
	}
	p.bool(true)
	p.bool(st.Warm)
	p.f64s(st.Mu)
	encodeMatrix(p, st.Sigma)
	p.f64(st.Sigma2)
	p.ints(st.ObsIdx)
	p.f64s(st.ObsVal)
}

func decodeSessionState(p *dec) *core.SessionState {
	present := p.bool()
	if p.err != nil || !present {
		return nil
	}
	st := &core.SessionState{}
	st.Warm = p.bool()
	st.Mu = p.f64s()
	st.Sigma = decodeMatrix(p)
	st.Sigma2 = p.f64()
	st.ObsIdx = p.ints()
	st.ObsVal = p.f64s()
	if p.err != nil {
		return nil
	}
	return st
}

func encodeMatrix(p *enc, m *matrix.Matrix) {
	if m == nil {
		p.u32(0)
		p.u32(0)
		return
	}
	p.u32(uint32(m.Rows))
	p.u32(uint32(m.Cols))
	for _, v := range m.Data {
		p.f64(v)
	}
}

func decodeMatrix(p *dec) *matrix.Matrix {
	rows := int(p.u32())
	cols := int(p.u32())
	if p.err != nil {
		return nil
	}
	if rows == 0 && cols == 0 {
		return nil
	}
	if rows < 0 || cols < 0 || rows > p.remaining() || cols > p.remaining() ||
		rows*cols*8 > p.remaining() {
		p.fail("matrix %dx%d exceeds remaining %d bytes", rows, cols, p.remaining())
		return nil
	}
	m := matrix.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = p.f64()
	}
	return m
}
