package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Store is a state directory holding one current snapshot, its previous
// generation, and the observation journal:
//
//	<dir>/snapshot.bin   current snapshot (atomic: tmp → fsync → rename)
//	<dir>/snapshot.prev  previous generation, the corruption fallback
//	<dir>/journal.bin    append-only window records since the oldest snapshot
//
// Writes are crash-ordered: a journal record is fsynced before Append
// returns (the window is not acknowledged until it is durable), and a
// snapshot becomes the current one only through an atomic rename, so a crash
// at any instant leaves either the new snapshot, the previous one, or both —
// never a half-written current. LoadSnapshot prefers current and falls back
// to previous when current is missing, truncated, or fails its checksum.
//
// A Store is not safe for concurrent use; the controller owns it.
type Store struct {
	dir     string
	journal *os.File
	lastSeq uint64 // highest journaled or snapshotted Seq seen
}

const (
	snapName = "snapshot.bin"
	prevName = "snapshot.prev"
	jrnlName = "journal.bin"
	tmpName  = "snapshot.tmp"
)

// Open attaches to (creating if needed) the state directory and repairs the
// journal's torn tail, if any, by truncating back to the last intact record.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating state dir: %w", err)
	}
	s := &Store{dir: dir}
	if err := s.openJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// ShardDir names shard i's state directory under root: the layout the
// estimation server uses, one fully independent snapshot+journal store per
// worker shard so shards persist and recover without coordinating.
func ShardDir(root string, shard int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", shard))
}

// OpenShard opens (creating if needed) shard i's store under root.
func OpenShard(root string, shard int) (*Store, error) {
	if shard < 0 {
		return nil, fmt.Errorf("persist: negative shard index %d", shard)
	}
	return Open(ShardDir(root, shard))
}

// LastSeq returns the highest window sequence number known to the store:
// the maximum over the journal's intact records and any snapshot loaded or
// written through it. The next Append must use LastSeq()+1.
func (s *Store) LastSeq() uint64 { return s.lastSeq }

// Close releases the journal file handle.
func (s *Store) Close() error {
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// openJournal opens (creating if absent) the journal, validates its header,
// and truncates any torn tail so the write offset lands on a record
// boundary.
func (s *Store) openJournal() error {
	path := s.path(jrnlName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("persist: opening journal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: stat journal: %w", err)
	}
	if info.Size() == 0 {
		// Fresh journal: stamp the header.
		if _, err := f.Write([]byte(journalMagic)); err != nil {
			f.Close()
			return fmt.Errorf("persist: writing journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: syncing journal header: %w", err)
		}
		s.journal = f
		return nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: reading journal: %w", err)
	}
	if len(b) < len(journalMagic) || string(b[:len(journalMagic)]) != journalMagic {
		f.Close()
		return corrupt("journal", "bad file header")
	}
	recs, clean := scanJournal(b[len(journalMagic):])
	keep := int64(len(journalMagic) + clean)
	if keep < info.Size() {
		// Torn tail from a crash mid-append: drop the unacknowledged bytes.
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return fmt.Errorf("persist: repairing journal: %w", err)
		}
		mJournalRepairs.Inc()
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return fmt.Errorf("persist: seeking journal: %w", err)
	}
	for _, r := range recs {
		if r.Seq > s.lastSeq {
			s.lastSeq = r.Seq
		}
	}
	s.journal = f
	return nil
}

// Append journals one window record durably: the write is fsynced before
// Append returns, so a record the caller saw acknowledged survives any
// subsequent crash.
func (s *Store) Append(r *WindowRecord) error {
	if s.journal == nil {
		return errors.New("persist: store is closed")
	}
	if _, err := s.journal.Write(encodeRecord(r)); err != nil {
		return fmt.Errorf("persist: appending journal record: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("persist: syncing journal: %w", err)
	}
	if r.Seq > s.lastSeq {
		s.lastSeq = r.Seq
	}
	mJournalAppends.Inc()
	return nil
}

// Replay returns the journal's intact records with Seq > afterSeq, in file
// order — the windows a recovery must re-apply on top of a snapshot taken
// at afterSeq.
func (s *Store) Replay(afterSeq uint64) ([]*WindowRecord, error) {
	b, err := os.ReadFile(s.path(jrnlName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: reading journal: %w", err)
	}
	if len(b) < len(journalMagic) || string(b[:len(journalMagic)]) != journalMagic {
		return nil, corrupt("journal", "bad file header")
	}
	recs, _ := scanJournal(b[len(journalMagic):])
	out := recs[:0]
	for _, r := range recs {
		if r.Seq > afterSeq {
			out = append(out, r)
		}
	}
	return out, nil
}

// WriteSnapshot makes snap the current snapshot atomically and rotates the
// old current to the previous generation:
//
//  1. write <dir>/snapshot.tmp, fsync it
//  2. rename snapshot.bin → snapshot.prev (if a current exists)
//  3. rename snapshot.tmp → snapshot.bin
//  4. fsync the directory so both renames are durable
//
// A crash between 2 and 3 leaves only snapshot.prev, which LoadSnapshot
// falls back to; at every other instant a complete current exists. The
// journal is NOT truncated — records at or below snap.Seq are skipped on
// replay — so a later fallback to snapshot.prev still finds the windows
// between the two generations in the journal.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	tmp := s.path(tmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(EncodeSnapshot(snap)); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: closing snapshot temp: %w", err)
	}
	cur := s.path(snapName)
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, s.path(prevName)); err != nil {
			return fmt.Errorf("persist: rotating snapshot: %w", err)
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if snap.Seq > s.lastSeq {
		s.lastSeq = snap.Seq
	}
	mSnapshotsWritten.Inc()
	return nil
}

// LoadSnapshot returns the newest intact snapshot: the current one, or —
// when it is missing, truncated, or corrupt — the previous generation
// (counted as a fallback). (nil, nil) means no snapshot exists at all,
// which is a normal cold start; an intact-current decode error is carried
// in the error only when the fallback also fails.
func (s *Store) LoadSnapshot() (*Snapshot, error) {
	snap, errCur := s.loadOne(snapName)
	if snap != nil {
		mSnapshotsLoaded.Inc()
		if snap.Seq > s.lastSeq {
			s.lastSeq = snap.Seq
		}
		return snap, nil
	}
	if errCur != nil {
		// The current generation exists but is damaged: fall back.
		mSnapshotFallbacks.Inc()
	}
	snap, errPrev := s.loadOne(prevName)
	if snap != nil {
		mSnapshotsLoaded.Inc()
		if snap.Seq > s.lastSeq {
			s.lastSeq = snap.Seq
		}
		return snap, nil
	}
	if errCur != nil {
		if errPrev != nil {
			return nil, fmt.Errorf("persist: current snapshot: %w; previous snapshot also unusable: %v", errCur, errPrev)
		}
		return nil, fmt.Errorf("persist: current snapshot: %w; no previous generation", errCur)
	}
	if errPrev != nil {
		return nil, fmt.Errorf("persist: previous snapshot: %w", errPrev)
	}
	return nil, nil // neither file exists: cold start
}

// loadOne reads and decodes one snapshot file. (nil, nil) means the file
// does not exist.
func (s *Store) loadOne(name string) (*Snapshot, error) {
	b, err := os.ReadFile(s.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	return DecodeSnapshot(b)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening state dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing state dir: %w", err)
	}
	return nil
}
