// Package platform models the configurable machine LEO optimizes: the
// cross-product of thread allocation, DVFS clock speed, and memory-controller
// assignment. It reproduces the paper's test platform — a dual-socket Xeon
// E5-2690 exposing 32 hardware threads, 15 DVFS settings (1.2–2.9 GHz) plus
// TurboBoost, and 2 memory controllers, for 1024 user-accessible
// configurations — as a parametric Space so experiments can also run at
// reduced sizes without changing any code paths.
//
// Configuration indices follow the paper's flattening order (§6.3): "The
// number of memory controllers is the fastest changing component of
// configuration, followed by clockspeed, followed by number of cores."
package platform

import "fmt"

// Space describes a configuration space: every combination of
// 1..Threads threads, Speeds clock settings, and 1..MemCtrls memory
// controllers is a distinct configuration.
type Space struct {
	Threads  int // number of allocatable hardware threads (cores × SMT)
	Speeds   int // number of clock settings, including TurboBoost as the top one
	MemCtrls int // number of memory controllers
}

// Paper returns the paper's full platform: 32 threads × 16 speeds × 2 memory
// controllers = 1024 configurations.
func Paper() Space { return Space{Threads: 32, Speeds: 16, MemCtrls: 2} }

// Small returns a reduced space (32 × 2 × 2 = 128 configurations) that keeps
// all three dimensions active; used for fast test/CI runs.
func Small() Space { return Space{Threads: 32, Speeds: 2, MemCtrls: 2} }

// CoresOnly returns the 32-configuration core-allocation space used by the
// paper's motivating Kmeans example (§2, Fig. 1).
func CoresOnly() Space { return Space{Threads: 32, Speeds: 1, MemCtrls: 1} }

// Validate reports whether the space's dimensions are all positive.
func (s Space) Validate() error {
	if s.Threads < 1 || s.Speeds < 1 || s.MemCtrls < 1 {
		return fmt.Errorf("platform: invalid space %+v: all dimensions must be >= 1", s)
	}
	return nil
}

// N returns the number of configurations in the space.
func (s Space) N() int { return s.Threads * s.Speeds * s.MemCtrls }

// Config identifies one machine configuration.
type Config struct {
	Threads  int // 1..Space.Threads
	Speed    int // 0..Space.Speeds-1, index into the frequency table
	MemCtrls int // 1..Space.MemCtrls
}

func (c Config) String() string {
	return fmt.Sprintf("threads=%d speed=%d memctrls=%d", c.Threads, c.Speed, c.MemCtrls)
}

// Index flattens a configuration into [0, N) following the paper's order:
// memory controller varies fastest, then clock speed, then thread count.
func (s Space) Index(c Config) int {
	if err := s.CheckConfig(c); err != nil {
		panic(err)
	}
	return (c.Threads-1)*s.Speeds*s.MemCtrls + c.Speed*s.MemCtrls + (c.MemCtrls - 1)
}

// ConfigAt inverts Index.
func (s Space) ConfigAt(i int) Config {
	if i < 0 || i >= s.N() {
		panic(fmt.Sprintf("platform: index %d out of range [0,%d)", i, s.N()))
	}
	mc := i%s.MemCtrls + 1
	i /= s.MemCtrls
	sp := i % s.Speeds
	th := i/s.Speeds + 1
	return Config{Threads: th, Speed: sp, MemCtrls: mc}
}

// CheckConfig validates that c lies within the space.
func (s Space) CheckConfig(c Config) error {
	if c.Threads < 1 || c.Threads > s.Threads ||
		c.Speed < 0 || c.Speed >= s.Speeds ||
		c.MemCtrls < 1 || c.MemCtrls > s.MemCtrls {
		return fmt.Errorf("platform: config %v outside space %+v", c, s)
	}
	return nil
}

// Configs returns every configuration in index order.
func (s Space) Configs() []Config {
	out := make([]Config, s.N())
	for i := range out {
		out[i] = s.ConfigAt(i)
	}
	return out
}

// Physical frequency limits of the modeled Xeon E5-2690 (GHz).
const (
	MinFreqGHz   = 1.2 // lowest DVFS setting
	BaseFreqGHz  = 2.9 // highest non-turbo setting; used as the reference
	TurboFreqGHz = 3.3 // TurboBoost
)

// Frequency returns the clock frequency (GHz) for speed setting sp.
// The top setting is TurboBoost; the remaining settings are spaced evenly
// over [MinFreqGHz, BaseFreqGHz] (for Speeds == 16 this reproduces the
// paper's 15 DVFS steps plus turbo). A one-speed space runs at base clock.
func (s Space) Frequency(sp int) float64 {
	if sp < 0 || sp >= s.Speeds {
		panic(fmt.Sprintf("platform: speed %d out of range [0,%d)", sp, s.Speeds))
	}
	if s.Speeds == 1 {
		return BaseFreqGHz
	}
	if sp == s.Speeds-1 {
		return TurboFreqGHz
	}
	steps := s.Speeds - 1 // non-turbo settings
	if steps == 1 {
		return BaseFreqGHz
	}
	return MinFreqGHz + float64(sp)*(BaseFreqGHz-MinFreqGHz)/float64(steps-1)
}

// PhysicalCores is the number of physical cores on the modeled machine;
// thread counts above this use the second hardware thread of each core.
const PhysicalCores = 16

// CoresPerSocket is the number of physical cores per socket.
const CoresPerSocket = 8

// MaxConfig returns the "race-to-idle" configuration: all threads, highest
// clock, all memory controllers.
func (s Space) MaxConfig() Config {
	return Config{Threads: s.Threads, Speed: s.Speeds - 1, MemCtrls: s.MemCtrls}
}

// Features returns the numeric predictors (threads, frequency in GHz, memory
// controllers) the Online polynomial-regression baseline uses for
// configuration i.
func (s Space) Features(i int) (threads, freqGHz, memCtrls float64) {
	c := s.ConfigAt(i)
	return float64(c.Threads), s.Frequency(c.Speed), float64(c.MemCtrls)
}
