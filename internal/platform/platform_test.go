package platform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperSpaceSize(t *testing.T) {
	s := Paper()
	if n := s.N(); n != 1024 {
		t.Fatalf("paper space has %d configurations, want 1024", n)
	}
}

func TestSmallAndCoresOnlySizes(t *testing.T) {
	if n := Small().N(); n != 128 {
		t.Fatalf("small space N = %d, want 128", n)
	}
	if n := CoresOnly().N(); n != 32 {
		t.Fatalf("cores-only space N = %d, want 32", n)
	}
}

func TestValidate(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Space{Threads: 0, Speeds: 1, MemCtrls: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero threads must be invalid")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	s := Paper()
	for i := 0; i < s.N(); i++ {
		c := s.ConfigAt(i)
		if got := s.Index(c); got != i {
			t.Fatalf("round trip failed: %d -> %v -> %d", i, c, got)
		}
	}
}

func TestIndexRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Space{
			Threads:  1 + int(r.Int31n(40)),
			Speeds:   1 + int(r.Int31n(20)),
			MemCtrls: 1 + int(r.Int31n(4)),
		}
		i := int(r.Int31n(int32(s.N())))
		return s.Index(s.ConfigAt(i)) == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPaperOrdering verifies the flattening order stated in §6.3: memory
// controller fastest, then clock speed, then cores.
func TestPaperOrdering(t *testing.T) {
	s := Paper()
	c0 := s.ConfigAt(0)
	if c0.Threads != 1 || c0.Speed != 0 || c0.MemCtrls != 1 {
		t.Fatalf("ConfigAt(0) = %v", c0)
	}
	c1 := s.ConfigAt(1)
	if c1.MemCtrls != 2 || c1.Threads != 1 || c1.Speed != 0 {
		t.Fatalf("index 1 should advance memory controllers first, got %v", c1)
	}
	c2 := s.ConfigAt(2)
	if c2.Speed != 1 || c2.MemCtrls != 1 || c2.Threads != 1 {
		t.Fatalf("index 2 should advance speed next, got %v", c2)
	}
	cLastOfThread1 := s.ConfigAt(31)
	if cLastOfThread1.Threads != 1 || cLastOfThread1.Speed != 15 || cLastOfThread1.MemCtrls != 2 {
		t.Fatalf("index 31 = %v", cLastOfThread1)
	}
	cThread2 := s.ConfigAt(32)
	if cThread2.Threads != 2 || cThread2.Speed != 0 || cThread2.MemCtrls != 1 {
		t.Fatalf("index 32 should advance threads last, got %v", cThread2)
	}
}

func TestIndexPanicsOutsideSpace(t *testing.T) {
	s := Small()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Index(Config{Threads: 33, Speed: 0, MemCtrls: 1})
}

func TestConfigAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Paper().ConfigAt(1024)
}

func TestCheckConfig(t *testing.T) {
	s := Paper()
	valid := Config{Threads: 16, Speed: 8, MemCtrls: 2}
	if err := s.CheckConfig(valid); err != nil {
		t.Fatal(err)
	}
	for _, c := range []Config{
		{Threads: 0, Speed: 0, MemCtrls: 1},
		{Threads: 1, Speed: 16, MemCtrls: 1},
		{Threads: 1, Speed: -1, MemCtrls: 1},
		{Threads: 1, Speed: 0, MemCtrls: 3},
		{Threads: 1, Speed: 0, MemCtrls: 0},
	} {
		if err := s.CheckConfig(c); err == nil {
			t.Fatalf("config %v should be invalid", c)
		}
	}
}

func TestConfigsEnumeration(t *testing.T) {
	s := Small()
	cfgs := s.Configs()
	if len(cfgs) != s.N() {
		t.Fatalf("Configs returned %d, want %d", len(cfgs), s.N())
	}
	seen := make(map[Config]bool, len(cfgs))
	for i, c := range cfgs {
		if s.Index(c) != i {
			t.Fatalf("Configs[%d] = %v has index %d", i, c, s.Index(c))
		}
		if seen[c] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c] = true
	}
}

func TestFrequencyTablePaper(t *testing.T) {
	s := Paper()
	if f := s.Frequency(0); math.Abs(f-MinFreqGHz) > 1e-12 {
		t.Fatalf("lowest speed = %g GHz, want %g", f, MinFreqGHz)
	}
	if f := s.Frequency(14); math.Abs(f-BaseFreqGHz) > 1e-12 {
		t.Fatalf("highest DVFS = %g GHz, want %g", f, BaseFreqGHz)
	}
	if f := s.Frequency(15); f != TurboFreqGHz {
		t.Fatalf("turbo = %g GHz, want %g", f, TurboFreqGHz)
	}
	// Monotone non-decreasing across the table.
	prev := 0.0
	for sp := 0; sp < s.Speeds; sp++ {
		f := s.Frequency(sp)
		if f < prev {
			t.Fatalf("frequency table not monotone at %d: %g < %g", sp, f, prev)
		}
		prev = f
	}
}

func TestFrequencySingleSpeed(t *testing.T) {
	s := CoresOnly()
	if f := s.Frequency(0); f != BaseFreqGHz {
		t.Fatalf("single-speed frequency = %g", f)
	}
}

func TestFrequencyTwoSpeeds(t *testing.T) {
	s := Space{Threads: 1, Speeds: 2, MemCtrls: 1}
	if f := s.Frequency(0); f != BaseFreqGHz {
		t.Fatalf("two-speed low = %g, want base", f)
	}
	if f := s.Frequency(1); f != TurboFreqGHz {
		t.Fatalf("two-speed high = %g, want turbo", f)
	}
}

func TestFrequencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Paper().Frequency(16)
}

func TestMaxConfig(t *testing.T) {
	s := Paper()
	m := s.MaxConfig()
	if m.Threads != 32 || m.Speed != 15 || m.MemCtrls != 2 {
		t.Fatalf("MaxConfig = %v", m)
	}
	if s.Index(m) != s.N()-1 {
		t.Fatalf("MaxConfig should be the last index, got %d", s.Index(m))
	}
}

func TestFeatures(t *testing.T) {
	s := Paper()
	c := Config{Threads: 7, Speed: 15, MemCtrls: 2}
	th, f, mc := s.Features(s.Index(c))
	if th != 7 || f != TurboFreqGHz || mc != 2 {
		t.Fatalf("Features = %g %g %g", th, f, mc)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Threads: 4, Speed: 2, MemCtrls: 1}
	if s := c.String(); s != "threads=4 speed=2 memctrls=1" {
		t.Fatalf("String = %q", s)
	}
}
