// Package profile manages the offline profiling database LEO learns from:
// per-application vectors of power and performance across every platform
// configuration, plus the observation masks that describe which
// configurations of the target application have been sampled online.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"leo/internal/apps"
	"leo/internal/matrix"
	"leo/internal/platform"
)

// Database holds profiling data for M applications over the n configurations
// of a platform space. Row i of Perf / Power is application i's y_i vector
// from the paper (performance in heartbeats/s, power in Watts).
type Database struct {
	Space platform.Space
	Apps  []string
	Perf  *matrix.Matrix // M×n
	Power *matrix.Matrix // M×n
}

// Collect profiles every application in list across the whole space,
// applying multiplicative Gaussian measurement noise with relative standard
// deviation noise (0 disables noise, mimicking long averaging windows).
// This is the "exhaustive search" data collection the paper performs offline
// (§6.2), which took days per application on real hardware and is instant on
// the simulator.
func Collect(space platform.Space, list []*apps.App, noise float64, rng *rand.Rand) (*Database, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if noise < 0 {
		return nil, fmt.Errorf("profile: negative noise %g", noise)
	}
	if noise > 0 && rng == nil {
		return nil, fmt.Errorf("profile: noise requires a random source")
	}
	n := space.N()
	db := &Database{
		Space: space,
		Apps:  make([]string, len(list)),
		Perf:  matrix.New(len(list), n),
		Power: matrix.New(len(list), n),
	}
	for i, a := range list {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		db.Apps[i] = a.Name
		perf := a.PerfVector(space)
		power := a.PowerVector(space)
		if noise > 0 {
			for c := range perf {
				perf[c] *= 1 + noise*rng.NormFloat64()
				power[c] *= 1 + noise*rng.NormFloat64()
			}
		}
		db.Perf.SetRow(i, perf)
		db.Power.SetRow(i, power)
	}
	return db, nil
}

// NumApps returns the number of profiled applications.
func (db *Database) NumApps() int { return len(db.Apps) }

// AppIndex returns the row index of the named application.
func (db *Database) AppIndex(name string) (int, error) {
	for i, a := range db.Apps {
		if a == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("profile: application %q not in database", name)
}

// LeaveOneOut splits the database into the profiles of every application
// except index target (returned as a new database) and the target's own
// ground-truth perf and power vectors. This is the evaluation protocol of
// §6.3: the target application is treated as never seen before.
func (db *Database) LeaveOneOut(target int) (*Database, []float64, []float64, error) {
	if target < 0 || target >= db.NumApps() {
		return nil, nil, nil, fmt.Errorf("profile: target %d out of range [0,%d)", target, db.NumApps())
	}
	m := db.NumApps() - 1
	rest := &Database{
		Space: db.Space,
		Apps:  make([]string, 0, m),
		Perf:  matrix.New(m, db.Space.N()),
		Power: matrix.New(m, db.Space.N()),
	}
	r := 0
	for i := 0; i < db.NumApps(); i++ {
		if i == target {
			continue
		}
		rest.Apps = append(rest.Apps, db.Apps[i])
		rest.Perf.SetRow(r, db.Perf.RowView(i))
		rest.Power.SetRow(r, db.Power.RowView(i))
		r++
	}
	return rest, db.Perf.Row(target), db.Power.Row(target), nil
}

// Validate checks internal consistency.
func (db *Database) Validate() error {
	if err := db.Space.Validate(); err != nil {
		return err
	}
	n := db.Space.N()
	m := len(db.Apps)
	if db.Perf == nil || db.Power == nil {
		return fmt.Errorf("profile: nil matrices")
	}
	if db.Perf.Rows != m || db.Perf.Cols != n {
		return fmt.Errorf("profile: perf matrix %dx%d, want %dx%d", db.Perf.Rows, db.Perf.Cols, m, n)
	}
	if db.Power.Rows != m || db.Power.Cols != n {
		return fmt.Errorf("profile: power matrix %dx%d, want %dx%d", db.Power.Rows, db.Power.Cols, m, n)
	}
	seen := make(map[string]bool, m)
	for _, a := range db.Apps {
		if a == "" {
			return fmt.Errorf("profile: empty application name")
		}
		if seen[a] {
			return fmt.Errorf("profile: duplicate application %q", a)
		}
		seen[a] = true
	}
	return nil
}

// databaseJSON is the serialized representation.
type databaseJSON struct {
	Space platform.Space `json:"space"`
	Apps  []string       `json:"apps"`
	Perf  [][]float64    `json:"perf"`
	Power [][]float64    `json:"power"`
}

// Save writes the database as JSON.
func (db *Database) Save(w io.Writer) error {
	if err := db.Validate(); err != nil {
		return err
	}
	out := databaseJSON{Space: db.Space, Apps: db.Apps}
	for i := 0; i < db.NumApps(); i++ {
		out.Perf = append(out.Perf, db.Perf.Row(i))
		out.Power = append(out.Power, db.Power.Row(i))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a database previously written by Save.
func Load(r io.Reader) (*Database, error) {
	var in databaseJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	db := &Database{
		Space: in.Space,
		Apps:  in.Apps,
		Perf:  matrix.NewFromRows(in.Perf),
		Power: matrix.NewFromRows(in.Power),
	}
	if len(in.Apps) == 0 {
		db.Perf = matrix.New(0, in.Space.N())
		db.Power = matrix.New(0, in.Space.N())
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}

// RandomMask returns k distinct configuration indices drawn uniformly from
// [0, n), sorted ascending. It is the sampling policy of §6.3 (LEO and the
// Online baseline "sample randomly select 20 configurations each").
func RandomMask(n, k int, rng *rand.Rand) []int {
	if k < 0 || k > n {
		panic(fmt.Sprintf("profile: mask size %d out of range [0,%d]", k, n))
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// UniformMask returns k indices evenly spaced across [0, n), the policy of
// the paper's motivating example (6 observations at 5, 10, …, 30 cores).
func UniformMask(n, k int) []int {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("profile: mask size %d out of range [1,%d]", k, n))
	}
	out := make([]int, k)
	for i := range out {
		out[i] = (i + 1) * n / (k + 1)
		if out[i] >= n {
			out[i] = n - 1
		}
	}
	// De-duplicate for tiny spaces.
	out = dedupSorted(out)
	return out
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, v := range xs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Observations pairs a mask with its measured values.
type Observations struct {
	Indices []int     // sorted configuration indices
	Values  []float64 // measured value at each index
}

// Observe extracts the entries of truth at the mask indices, optionally
// corrupted by multiplicative Gaussian noise.
func Observe(truth []float64, mask []int, noise float64, rng *rand.Rand) Observations {
	obs := Observations{Indices: append([]int(nil), mask...), Values: make([]float64, len(mask))}
	for i, idx := range mask {
		if idx < 0 || idx >= len(truth) {
			panic(fmt.Sprintf("profile: mask index %d out of range [0,%d)", idx, len(truth)))
		}
		v := truth[idx]
		if noise > 0 {
			v *= 1 + noise*rng.NormFloat64()
		}
		obs.Values[i] = v
	}
	return obs
}
