package profile

import (
	"bytes"
	"math/rand"
	"testing"

	"leo/internal/apps"
	"leo/internal/platform"
	"leo/internal/stats"
)

func testDB(t *testing.T, noise float64) *Database {
	t.Helper()
	db, err := Collect(platform.Small(), apps.Suite(), noise, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCollectShapes(t *testing.T) {
	db := testDB(t, 0)
	if db.NumApps() != apps.SuiteSize {
		t.Fatalf("NumApps = %d", db.NumApps())
	}
	n := platform.Small().N()
	if db.Perf.Rows != 25 || db.Perf.Cols != n || db.Power.Cols != n {
		t.Fatalf("matrix shapes perf %dx%d power %dx%d", db.Perf.Rows, db.Perf.Cols, db.Power.Rows, db.Power.Cols)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectNoiseless(t *testing.T) {
	db := testDB(t, 0)
	a := apps.MustByName("kmeans")
	i, err := db.AppIndex("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	truth := a.PerfVector(platform.Small())
	row := db.Perf.Row(i)
	for c := range truth {
		if row[c] != truth[c] {
			t.Fatalf("noiseless collection differs at %d", c)
		}
	}
}

func TestCollectNoisy(t *testing.T) {
	noisy := testDB(t, 0.05)
	clean := testDB(t, 0)
	// Noisy values must differ but stay close (5% relative noise).
	diffs := 0
	for i, v := range noisy.Perf.Data {
		if v != clean.Perf.Data[i] {
			diffs++
		}
		rel := (v - clean.Perf.Data[i]) / clean.Perf.Data[i]
		if rel > 0.5 || rel < -0.5 {
			t.Fatalf("noise too large: relative error %g", rel)
		}
	}
	if diffs == 0 {
		t.Fatal("noise had no effect")
	}
}

func TestCollectErrors(t *testing.T) {
	if _, err := Collect(platform.Space{}, apps.Suite(), 0, nil); err == nil {
		t.Fatal("invalid space must error")
	}
	if _, err := Collect(platform.Small(), apps.Suite(), -1, nil); err == nil {
		t.Fatal("negative noise must error")
	}
	if _, err := Collect(platform.Small(), apps.Suite(), 0.1, nil); err == nil {
		t.Fatal("noise without rng must error")
	}
	bad := apps.Suite()
	bad[3].BaseRate = 0
	if _, err := Collect(platform.Small(), bad, 0, nil); err == nil {
		t.Fatal("invalid app must error")
	}
}

func TestAppIndex(t *testing.T) {
	db := testDB(t, 0)
	i, err := db.AppIndex("x264")
	if err != nil {
		t.Fatal(err)
	}
	if db.Apps[i] != "x264" {
		t.Fatalf("AppIndex points at %q", db.Apps[i])
	}
	if _, err := db.AppIndex("missing"); err == nil {
		t.Fatal("missing app must error")
	}
}

func TestLeaveOneOut(t *testing.T) {
	db := testDB(t, 0)
	target, err := db.AppIndex("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	rest, perf, power, err := db.LeaveOneOut(target)
	if err != nil {
		t.Fatal(err)
	}
	if rest.NumApps() != 24 {
		t.Fatalf("rest has %d apps", rest.NumApps())
	}
	for _, a := range rest.Apps {
		if a == "kmeans" {
			t.Fatal("target still present in rest")
		}
	}
	if err := rest.Validate(); err != nil {
		t.Fatal(err)
	}
	truth := apps.MustByName("kmeans").PerfVector(platform.Small())
	for c := range truth {
		if perf[c] != truth[c] {
			t.Fatal("target perf vector wrong")
		}
	}
	if len(power) != platform.Small().N() {
		t.Fatal("target power vector wrong length")
	}
	// Ordering of remaining apps preserved.
	if rest.Apps[0] != db.Apps[0] {
		t.Fatal("leave-one-out reordered apps")
	}
}

func TestLeaveOneOutRange(t *testing.T) {
	db := testDB(t, 0)
	if _, _, _, err := db.LeaveOneOut(-1); err == nil {
		t.Fatal("negative target must error")
	}
	if _, _, _, err := db.LeaveOneOut(25); err == nil {
		t.Fatal("out-of-range target must error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t, 0.02)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Space != db.Space || back.NumApps() != db.NumApps() {
		t.Fatal("metadata lost in round trip")
	}
	if !back.Perf.Equal(db.Perf, 0) || !back.Power.Equal(db.Power, 0) {
		t.Fatal("matrices differ after round trip")
	}
	// Application index ordering must survive: every leave-one-out split,
	// fold cache key, and saved experiment references rows by position.
	for i, name := range db.Apps {
		if back.Apps[i] != name {
			t.Fatalf("app %d renamed %q -> %q in round trip", i, name, back.Apps[i])
		}
		idx, err := back.AppIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("AppIndex(%q) = %d after round trip, want %d", name, idx, i)
		}
	}
	// And a split on the loaded database must match one on the original
	// bit-for-bit (the noisy values make silent row reordering detectable).
	restA, truthA, _, err := db.LeaveOneOut(3)
	if err != nil {
		t.Fatal(err)
	}
	restB, truthB, _, err := back.LeaveOneOut(3)
	if err != nil {
		t.Fatal(err)
	}
	if !restA.Perf.Equal(restB.Perf, 0) {
		t.Fatal("leave-one-out folds differ after round trip")
	}
	for i := range truthA {
		if truthA[i] != truthB[i] {
			t.Fatalf("truth row differs at %d after round trip", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := Load(bytes.NewBufferString(`{"space":{"Threads":0,"Speeds":0,"MemCtrls":0},"apps":[],"perf":[],"power":[]}`)); err == nil {
		t.Fatal("invalid space must error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	db := testDB(t, 0)
	db.Apps[1] = db.Apps[0] // duplicate
	if err := db.Validate(); err == nil {
		t.Fatal("duplicate names must fail validation")
	}
	db = testDB(t, 0)
	db.Apps = db.Apps[:10] // shape mismatch
	if err := db.Validate(); err == nil {
		t.Fatal("shape mismatch must fail validation")
	}
}

func TestRandomMask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mask := RandomMask(100, 20, rng)
	if len(mask) != 20 {
		t.Fatalf("mask size %d", len(mask))
	}
	seen := make(map[int]bool)
	prev := -1
	for _, idx := range mask {
		if idx < 0 || idx >= 100 {
			t.Fatalf("index %d out of range", idx)
		}
		if idx <= prev {
			t.Fatal("mask not sorted ascending / has duplicates")
		}
		if seen[idx] {
			t.Fatal("duplicate index")
		}
		seen[idx] = true
		prev = idx
	}
}

func TestRandomMaskEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if len(RandomMask(5, 0, rng)) != 0 {
		t.Fatal("empty mask should be allowed")
	}
	if len(RandomMask(5, 5, rng)) != 5 {
		t.Fatal("full mask should be allowed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	RandomMask(5, 6, rng)
}

func TestUniformMaskMatchesPaperExample(t *testing.T) {
	// The paper's §2 example observes 6 of 32 core counts: 5, 10, ..., 30,
	// which are configuration indices 4, 9, ..., 29 (0-based).
	mask := UniformMask(32, 6)
	want := []int{4, 9, 13, 18, 22, 27}
	if len(mask) != 6 {
		t.Fatalf("mask = %v", mask)
	}
	// Evenly spread: strictly increasing with roughly equal gaps.
	for i := 1; i < len(mask); i++ {
		gap := mask[i] - mask[i-1]
		if gap < 3 || gap > 7 {
			t.Fatalf("uneven mask %v (want spacing like %v)", mask, want)
		}
	}
}

func TestUniformMaskSmallSpace(t *testing.T) {
	mask := UniformMask(3, 3)
	if len(mask) == 0 || mask[len(mask)-1] >= 3 {
		t.Fatalf("mask = %v", mask)
	}
}

func TestObserve(t *testing.T) {
	truth := []float64{10, 20, 30, 40}
	obs := Observe(truth, []int{1, 3}, 0, nil)
	if obs.Values[0] != 20 || obs.Values[1] != 40 {
		t.Fatalf("Observe = %v", obs.Values)
	}
	rng := rand.New(rand.NewSource(9))
	noisy := Observe(truth, []int{0, 1, 2, 3}, 0.01, rng)
	if stats.Accuracy(noisy.Values, truth) < 0.9 {
		t.Fatal("1% noise should preserve accuracy")
	}
	same := Observe(truth, []int{0, 1, 2, 3}, 0, nil)
	for i, v := range same.Values {
		if v != truth[i] {
			t.Fatal("noiseless observation must be exact")
		}
	}
}

func TestObservePanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Observe([]float64{1}, []int{5}, 0, nil)
}
