// Package sampling provides policies for choosing which configurations to
// probe online. The paper samples uniformly at random (§6.3); this package
// also implements the natural extension the hierarchical model invites:
// active sampling, which greedily probes the configuration with the highest
// posterior predictive variance, refitting after each probe. The posterior
// covariance Ĉ_M (Eq. 3) quantifies exactly how uncertain each unobserved
// configuration still is — the signal LEO's CALOREE follow-on builds on.
package sampling

import (
	"context"
	"fmt"
	"math/rand"

	"leo/internal/core"
	"leo/internal/matrix"
	"leo/internal/profile"
)

// Measure probes one configuration and returns its (possibly noisy)
// measured value.
type Measure func(config int) float64

// Policy selects a budget of configurations to probe and returns the
// resulting observations.
type Policy interface {
	// Name identifies the policy for reports.
	Name() string
	// Collect probes up to budget configurations of an n-configuration
	// space via measure. ctx bounds the collection: policies that fit a
	// model between probes (Active) abort mid-sweep on cancellation with an
	// error wrapping core.ErrCanceled.
	Collect(ctx context.Context, n, budget int, measure Measure) (profile.Observations, error)
}

// Random probes uniformly random distinct configurations (the paper's
// policy).
type Random struct {
	Rng *rand.Rand
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Collect implements Policy.
func (r *Random) Collect(_ context.Context, n, budget int, measure Measure) (profile.Observations, error) {
	if err := checkBudget(n, budget); err != nil {
		return profile.Observations{}, err
	}
	if r.Rng == nil {
		return profile.Observations{}, fmt.Errorf("sampling: random policy needs a random source")
	}
	mask := profile.RandomMask(n, budget, r.Rng)
	return observe(mask, measure), nil
}

// Uniform probes evenly spaced configurations (the §2 motivating example's
// policy).
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return "uniform" }

// Collect implements Policy.
func (Uniform) Collect(_ context.Context, n, budget int, measure Measure) (profile.Observations, error) {
	if err := checkBudget(n, budget); err != nil {
		return profile.Observations{}, err
	}
	mask := profile.UniformMask(n, budget)
	return observe(mask, measure), nil
}

// Active greedily probes the configuration with the highest posterior
// variance under the hierarchical model, refitting after every probe. It
// needs the offline database (the model's prior); Seed configurations are
// probed first to anchor the fit (default: 2 uniform probes).
//
// The offline prior is fit once, on first use, and shared across every refit
// of every Collect call — the greedy loop only pays for the per-probe EM
// fits. An Active value is consequently not safe for concurrent use; give
// each goroutine its own.
type Active struct {
	Known *matrix.Matrix // offline data for the metric being sampled
	Opts  core.Options
	Seed  int // initial uniform probes before the greedy loop (default 2)

	prior *core.Prior // lazily fit over Known; Known must not change after
}

// Name implements Policy.
func (a *Active) Name() string { return "active" }

// Collect implements Policy.
func (a *Active) Collect(ctx context.Context, n, budget int, measure Measure) (profile.Observations, error) {
	if err := checkBudget(n, budget); err != nil {
		return profile.Observations{}, err
	}
	if a.Known == nil || a.Known.Cols != n {
		return profile.Observations{}, fmt.Errorf("sampling: active policy needs offline data with %d columns", n)
	}
	if a.prior == nil {
		prior, err := core.NewPrior(a.Known, a.Opts)
		if err != nil {
			return profile.Observations{}, err
		}
		a.prior = prior
	}
	seed := a.Seed
	if seed <= 0 {
		seed = 2
	}
	if seed > budget {
		seed = budget
	}
	obs := observe(profile.UniformMask(n, seed), measure)
	taken := make(map[int]bool, budget)
	for _, idx := range obs.Indices {
		taken[idx] = true
	}
	for len(obs.Indices) < budget {
		res, err := a.prior.Estimate(ctx, obs.Indices, obs.Values)
		if err != nil {
			return profile.Observations{}, err
		}
		next, found := -1, false
		best := -1.0
		for i, v := range res.Variance {
			if taken[i] {
				continue
			}
			if v > best {
				best, next, found = v, i, true
			}
		}
		if !found {
			break
		}
		taken[next] = true
		obs.Indices = append(obs.Indices, next)
		obs.Values = append(obs.Values, measure(next))
	}
	return obs, nil
}

func checkBudget(n, budget int) error {
	if budget < 0 || budget > n {
		return fmt.Errorf("sampling: budget %d outside [0,%d]", budget, n)
	}
	return nil
}

func observe(mask []int, measure Measure) profile.Observations {
	obs := profile.Observations{
		Indices: append([]int(nil), mask...),
		Values:  make([]float64, len(mask)),
	}
	for i, idx := range mask {
		obs.Values[i] = measure(idx)
	}
	return obs
}

// TruthMeasure adapts a ground-truth vector (with optional multiplicative
// noise) into a Measure.
func TruthMeasure(truth []float64, noise float64, rng *rand.Rand) Measure {
	return func(config int) float64 {
		v := truth[config]
		if noise > 0 {
			v *= 1 + noise*rng.NormFloat64()
		}
		return v
	}
}
