package sampling

import (
	"context"
	"math/rand"
	"testing"

	"leo/internal/apps"
	"leo/internal/core"
	"leo/internal/matrix"
	"leo/internal/platform"
	"leo/internal/profile"
	"leo/internal/stats"
)

// fixture builds the kmeans leave-one-out scenario on the cores-only space.
func fixture(t *testing.T) (known *matrix.Matrix, truth []float64) {
	t.Helper()
	db, err := profile.Collect(platform.CoresOnly(), apps.Suite(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	target, err := db.AppIndex("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	rest, perf, _, err := db.LeaveOneOut(target)
	if err != nil {
		t.Fatal(err)
	}
	return rest.Perf, perf
}

func countingMeasure(truth []float64, calls *int) Measure {
	return func(config int) float64 {
		*calls++
		return truth[config]
	}
}

func TestRandomPolicy(t *testing.T) {
	_, truth := fixture(t)
	calls := 0
	p := &Random{Rng: rand.New(rand.NewSource(1))}
	if p.Name() != "random" {
		t.Fatalf("Name = %q", p.Name())
	}
	obs, err := p.Collect(context.Background(), 32, 10, countingMeasure(truth, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Indices) != 10 || calls != 10 {
		t.Fatalf("collected %d with %d calls", len(obs.Indices), calls)
	}
	seen := map[int]bool{}
	for i, idx := range obs.Indices {
		if seen[idx] {
			t.Fatal("duplicate probe")
		}
		seen[idx] = true
		if obs.Values[i] != truth[idx] {
			t.Fatal("measured value mismatch")
		}
	}
}

func TestRandomPolicyNeedsRng(t *testing.T) {
	p := &Random{}
	if _, err := p.Collect(context.Background(), 32, 5, func(int) float64 { return 0 }); err == nil {
		t.Fatal("nil rng must error")
	}
}

func TestUniformPolicy(t *testing.T) {
	_, truth := fixture(t)
	calls := 0
	obs, err := Uniform{}.Collect(context.Background(), 32, 6, countingMeasure(truth, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Indices) != 6 {
		t.Fatalf("collected %d", len(obs.Indices))
	}
	for i := 1; i < len(obs.Indices); i++ {
		if obs.Indices[i] <= obs.Indices[i-1] {
			t.Fatal("uniform probes not increasing")
		}
	}
}

func TestBudgetValidation(t *testing.T) {
	if _, err := (Uniform{}).Collect(context.Background(), 10, 11, func(int) float64 { return 0 }); err == nil {
		t.Fatal("budget > n must error")
	}
	if _, err := (Uniform{}).Collect(context.Background(), 10, -1, func(int) float64 { return 0 }); err == nil {
		t.Fatal("negative budget must error")
	}
}

func TestActivePolicyCollects(t *testing.T) {
	known, truth := fixture(t)
	calls := 0
	p := &Active{Known: known}
	if p.Name() != "active" {
		t.Fatalf("Name = %q", p.Name())
	}
	obs, err := p.Collect(context.Background(), 32, 8, countingMeasure(truth, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Indices) != 8 || calls != 8 {
		t.Fatalf("collected %d with %d calls", len(obs.Indices), calls)
	}
	seen := map[int]bool{}
	for _, idx := range obs.Indices {
		if idx < 0 || idx >= 32 || seen[idx] {
			t.Fatalf("bad probe set %v", obs.Indices)
		}
		seen[idx] = true
	}
}

func TestActivePolicyValidation(t *testing.T) {
	p := &Active{}
	if _, err := p.Collect(context.Background(), 32, 5, func(int) float64 { return 0 }); err == nil {
		t.Fatal("missing offline data must error")
	}
}

func TestActivePolicyFullBudget(t *testing.T) {
	known, truth := fixture(t)
	p := &Active{Known: known}
	obs, err := p.Collect(context.Background(), 32, 32, TruthMeasure(truth, 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Indices) != 32 {
		t.Fatalf("full budget collected %d", len(obs.Indices))
	}
}

// TestActiveBeatsRandomSampleEfficiency: with a small probe budget, variance
// -driven probing should (on average over targets) estimate at least as well
// as random probing.
func TestActiveBeatsRandomSampleEfficiency(t *testing.T) {
	db, err := profile.Collect(platform.CoresOnly(), apps.Suite(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 5
	var activeSum, randomSum float64
	targets := []string{"kmeans", "swish", "x264", "streamcluster", "bfs"}
	rng := rand.New(rand.NewSource(4))
	for _, name := range targets {
		idx, err := db.AppIndex(name)
		if err != nil {
			t.Fatal(err)
		}
		rest, truth, _, err := db.LeaveOneOut(idx)
		if err != nil {
			t.Fatal(err)
		}
		measure := TruthMeasure(truth, 0, nil)

		active := &Active{Known: rest.Perf}
		obsA, err := active.Collect(context.Background(), 32, budget, measure)
		if err != nil {
			t.Fatal(err)
		}
		resA, err := core.Estimate(rest.Perf, obsA.Indices, obsA.Values, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		activeSum += stats.Accuracy(resA.Estimate, truth)

		// Average a few random draws for a fair comparison.
		const draws = 4
		for d := 0; d < draws; d++ {
			rp := &Random{Rng: rng}
			obsR, err := rp.Collect(context.Background(), 32, budget, measure)
			if err != nil {
				t.Fatal(err)
			}
			resR, err := core.Estimate(rest.Perf, obsR.Indices, obsR.Values, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			randomSum += stats.Accuracy(resR.Estimate, truth) / draws
		}
	}
	if activeSum < randomSum-0.1 {
		t.Fatalf("active sampling (%g) clearly worse than random (%g)", activeSum, randomSum)
	}
}

func TestTruthMeasureNoise(t *testing.T) {
	truth := []float64{100, 200}
	exact := TruthMeasure(truth, 0, nil)
	if exact(1) != 200 {
		t.Fatal("noiseless measure wrong")
	}
	rng := rand.New(rand.NewSource(5))
	noisy := TruthMeasure(truth, 0.1, rng)
	same := true
	for i := 0; i < 10; i++ {
		if noisy(0) != 100 {
			same = false
		}
	}
	if same {
		t.Fatal("noisy measure produced no noise")
	}
}
