package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// stalledServer builds a server whose single shard never runs: requests
// enqueue but are never served, which is exactly the regime the dispatch
// cancellation and queue-full paths must survive. Built by hand (not New)
// so the shard goroutine genuinely never starts.
func stalledServer(t *testing.T, queueDepth int, tick time.Duration) (*Server, *shard) {
	t.Helper()
	s := &Server{
		cfg:        Config{QueueDepth: queueDepth}.withDefaults(),
		retryAfter: retryAfterSeconds(tick),
		draining:   make(chan struct{}),
		admitted:   make(chan struct{}, 1),
	}
	sh := &shard{
		srv:     s,
		id:      0,
		queue:   make(chan *request, queueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		tenants: make(map[string]*tenant),
		met:     newShardMetrics(0),
	}
	s.shards = []*shard{sh}
	return s, sh
}

// TestDispatchClientCanceled pins the fix for the handler-goroutine leak: a
// caller whose context is done must get its context error back promptly
// instead of parking on the reply channel of a shard that will never answer.
func TestDispatchClientCanceled(t *testing.T) {
	s, sh := stalledServer(t, 4, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := s.dispatch(&request{ctx: ctx, op: opEstimate, tenant: "t", reply: make(chan response, 1)})
	if err == nil {
		t.Fatal("dispatch returned no error for a canceled caller")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if got := statusFor(err); got != statusClientClosedRequest {
		t.Fatalf("statusFor(%v) = %d, want %d", err, got, statusClientClosedRequest)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("dispatch took %v against a stalled shard", waited)
	}
	// The request was still enqueued: the shard owns it and would reply into
	// the buffered channel if it ever woke up — abandonment never loses work.
	if len(sh.queue) != 1 {
		t.Fatalf("queue holds %d requests, want the abandoned 1", len(sh.queue))
	}
}

// TestDispatchNilContextStillServed pins that internal callers passing no
// context keep the old wait-forever contract rather than panicking on a nil
// Done channel.
func TestDispatchNilContextStillServed(t *testing.T) {
	s, sh := stalledServer(t, 4, 0)
	r := &request{op: opEstimate, tenant: "t", reply: make(chan response, 1)}
	go func() {
		q := <-sh.queue
		q.reply <- response{err: ErrUnknownTenant}
	}()
	resp, err := s.dispatch(r)
	if err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	if !errors.Is(resp.err, ErrUnknownTenant) {
		t.Fatalf("reply error %v, want ErrUnknownTenant", resp.err)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		tick time.Duration
		want string
	}{
		{0, "1"},
		{500 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{2500 * time.Millisecond, "3"},
		{time.Minute, "60"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.tick); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.tick, got, c.want)
		}
	}
}

// TestRetryAfterHeaderDerivedFromTick drives a queue-full 429 through the
// real HTTP surface and checks the Retry-After hint is the configured tick
// rounded up — not the old hard-coded "1".
func TestRetryAfterHeaderDerivedFromTick(t *testing.T) {
	s, sh := stalledServer(t, 1, 2500*time.Millisecond)
	// Fill the only queue slot so the next dispatch is backpressured.
	sh.queue <- &request{op: opEstimate, tenant: "parked", reply: make(chan response, 1)}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/estimate?tenant=x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want %q (2.5s tick rounded up)", got, "3")
	}
}

// TestTickPacedSchedulerServes runs the full register/observe/estimate
// lifecycle with a scheduling tick configured, covering gather's timer path:
// batches wait out the tick, requests still complete, and the server's 429
// hint reflects the tick.
func TestTickPacedSchedulerServes(t *testing.T) {
	f := newFixture(t)
	cfg := f.config()
	cfg.TickInterval = 50 * time.Millisecond
	s, ts := startServer(t, cfg)
	if s.retryAfter != "1" {
		t.Fatalf("retryAfter %q for a 50ms tick, want %q", s.retryAfter, "1")
	}
	register(t, ts.URL, "tick-tenant", "kmeans", f.idle)
	observeTruth(t, ts.URL, "tick-tenant", f, f.space.N())
	code, body := getJSON(t, ts.URL+"/v1/estimate?tenant=tick-tenant")
	if code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, body["error"])
	}
}
