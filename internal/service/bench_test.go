package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"leo/internal/stream"
)

// BenchmarkServiceThroughput measures the serving layer end to end: a
// synthetic fleet (GenerateTraffic) replayed over real HTTP against a
// sharded server. One benchmark iteration replays the whole schedule —
// registrations, observe windows and piggybacked plan requests — through a
// small client pool that preserves per-tenant ordering (tenants are
// partitioned across clients by the same FNV hash the shards use).
//
// Two custom metrics feed the BENCH_em.json service column: sessions/s is
// tenant-windows refit per wall-clock second (the service's unit of work —
// each window is one warm session refit per metric), and p99-plan-ms is the
// client-observed 99th-percentile plan latency.
func BenchmarkServiceThroughput(b *testing.B) {
	f := newFixture(b)
	cfg := f.config()
	cfg.Shards = 4

	tenants := 32
	duration := 3.0
	if testing.Short() {
		tenants = 8
		duration = 1.0
	}
	events, err := GenerateTraffic(TrafficConfig{
		Seed:    7,
		Tenants: tenants,
		Classes: []TrafficClass{
			{Name: "kmeans", PerfTruth: f.truePerf, PowerTruth: f.truePower},
		},
		MeanRate:         1,
		DiurnalAmplitude: 0.5,
		DiurnalPeriod:    duration,
		Duration:         duration,
		ProbesPerWindow:  12,
		Noise:            0.02,
	})
	if err != nil {
		b.Fatal(err)
	}
	windows := 0
	for _, ev := range events {
		if ev.Kind == EvObserve {
			windows++
		}
	}
	if windows == 0 {
		b.Fatal("traffic schedule has no observe windows")
	}

	const clients = 4
	var planLat []time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b.StartTimer()

		lat := replayTraffic(b, ts.URL, events, clients)

		b.StopTimer()
		ts.Close()
		if err := srv.Close(context.Background()); err != nil {
			b.Fatal(err)
		}
		planLat = append(planLat, lat...)
		b.StartTimer()
	}
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(windows*b.N)/elapsed, "sessions/s")
	}
	if len(planLat) > 0 {
		sort.Slice(planLat, func(i, j int) bool { return planLat[i] < planLat[j] })
		p99 := planLat[(len(planLat)*99+99)/100-1]
		b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-plan-ms")
	}
}

// replayTraffic issues the schedule against base through a fixed client
// pool. Each tenant's events run on one client in schedule order, so the
// per-tenant observe→plan dependency holds; 429 backpressure is honored by
// retrying after a short pause. Returns the observed plan latencies.
func replayTraffic(b *testing.B, base string, events []Event, clients int) []time.Duration {
	perClient := make([][]Event, clients)
	for _, ev := range events {
		c := int(stream.Hash64(ev.Tenant) % uint64(clients))
		perClient[c] = append(perClient[c], ev)
	}
	lats := make([][]time.Duration, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, ev := range perClient[c] {
				lat, err := issueEvent(base, ev)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if ev.Kind == EvPlan {
					lats[c] = append(lats[c], lat)
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	return all
}

// issueEvent performs one traffic event, retrying 429 backpressure.
func issueEvent(base string, ev Event) (time.Duration, error) {
	for attempt := 0; ; attempt++ {
		var (
			resp *http.Response
			err  error
		)
		start := time.Now()
		switch ev.Kind {
		case EvRegister:
			body, _ := json.Marshal(map[string]any{"tenant": ev.Tenant, "class": ev.Class})
			resp, err = http.Post(base+"/v1/register", "application/json", bytes.NewReader(body))
		case EvObserve:
			body, _ := json.Marshal(map[string]any{
				"tenant": ev.Tenant, "obs_idx": ev.ObsIdx, "perf": ev.Perf, "power": ev.Power,
			})
			resp, err = http.Post(base+"/v1/observe", "application/json", bytes.NewReader(body))
		case EvPlan:
			resp, err = http.Get(fmt.Sprintf("%s/v1/plan?tenant=%s&work=%g&deadline=%g",
				base, ev.Tenant, ev.Work, ev.Deadline))
		}
		if err != nil {
			return 0, err
		}
		lat := time.Since(start)
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("%v %s: %d %s", ev.Kind, ev.Tenant, resp.StatusCode, raw)
		}
		return lat, nil
	}
}
