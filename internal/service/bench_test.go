package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"leo/internal/baseline"
	"leo/internal/profile"
	"leo/internal/stream"
)

// BenchmarkServiceThroughput measures the serving layer end to end: a
// synthetic fleet (GenerateTraffic) replayed over real HTTP against a
// sharded server. One benchmark iteration replays the whole schedule —
// registrations, observe windows and piggybacked plan requests — through a
// small client pool that preserves per-tenant ordering (tenants are
// partitioned across clients by the same FNV hash the shards use).
//
// Three custom metrics feed the BENCH_em.json service column: sessions/s is
// tenant-windows refit per wall-clock second (the service's unit of work —
// each window is one warm session refit per metric), plans/s is plan
// requests answered per wall-clock second, and p99-plan-ms is the
// client-observed 99th-percentile plan latency.
//
// The workload is plan-heavy and admission-heavy on purpose: tenants
// register on their first window's arrival (not all at t=0), so cold-start
// transfer is on the measured path, and each window is followed by several
// plan requests over quantized demand levels, so the plan cache is too.
func BenchmarkServiceThroughput(b *testing.B) {
	f := newFixture(b)
	cfg := f.config()
	cfg.Shards = 4

	tenants := 32
	duration := 3.0
	if testing.Short() {
		tenants = 8
		duration = 1.0
	}
	events, err := GenerateTraffic(TrafficConfig{
		Seed:    7,
		Tenants: tenants,
		Classes: []TrafficClass{
			{Name: "kmeans", PerfTruth: f.truePerf, PowerTruth: f.truePower},
		},
		MeanRate:          1,
		DiurnalAmplitude:  0.5,
		DiurnalPeriod:     duration,
		Duration:          duration,
		ProbesPerWindow:   12,
		Noise:             0.02,
		PlansPerWindow:    8,
		PlanLevels:        4,
		RegisterOnArrival: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	windows, plans := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case EvObserve:
			windows++
		case EvPlan:
			plans++
		}
	}
	if windows == 0 {
		b.Fatal("traffic schedule has no observe windows")
	}

	const clients = 4
	var planLat []time.Duration
	warmSessionPools(b, f, tenants+cfg.Shards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		// Steady-state admission: one untimed donor window per shard captures
		// each shard's class seed, the once-per-deployment cold fit. The
		// measured replay then pays what a running fleet pays — seed-
		// transferred warm refits — for every arriving tenant.
		seedShards(b, ts.URL, f, cfg.Shards)
		b.StartTimer()

		lat := replayTraffic(b, ts.URL, events, clients)

		b.StopTimer()
		ts.Close()
		if err := srv.Close(context.Background()); err != nil {
			b.Fatal(err)
		}
		planLat = append(planLat, lat...)
		// Collect the replay's HTTP-layer garbage off the clock: on a
		// single-CPU box a background cycle landing mid-replay steals
		// wall-clock from every shard at once and bimodalizes the numbers.
		runtime.GC()
		b.StartTimer()
	}
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(windows*b.N)/elapsed, "sessions/s")
		b.ReportMetric(float64(plans*b.N)/elapsed, "plans/s")
	}
	if len(planLat) > 0 {
		sort.Slice(planLat, func(i, j int) bool { return planLat[i] < planLat[j] })
		p99 := planLat[(len(planLat)*99+99)/100-1]
		b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-plan-ms")
	}
}

// warmSessionPools models steady-state tenant churn: it draws count session
// pairs per class tier and releases them, so the priors' free lists hold
// recycled workspaces before the timed replay. In a running fleet departed
// tenants keep the pools stocked; a cold benchmark process has had no
// departures yet, so admission would otherwise pay a fleet's worth of
// one-time workspace allocations inside the measured window.
func warmSessionPools(b *testing.B, f *fixture, count int) {
	b.Helper()
	for _, cl := range f.classes {
		for _, tier := range cl.Tiers {
			sessions := make([]baseline.Session, 0, 2*count)
			for i := 0; i < count; i++ {
				perf, err := tier.Perf.NewSession(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				power, err := tier.Power.NewSession(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				sessions = append(sessions, perf, power)
			}
			for _, s := range sessions {
				baseline.ReleaseSession(s)
			}
		}
	}
}

// seedShards registers one donor tenant per shard and feeds it a single
// observation window, so every shard holds a class seed before the timed
// replay begins. Donor names are probed until each shard's hash bucket is
// covered — the same FNV lane the server routes by.
func seedShards(b *testing.B, base string, f *fixture, shards int) {
	b.Helper()
	rng := rand.New(rand.NewSource(12345))
	covered := make([]bool, shards)
	remaining := shards
	for k := 0; remaining > 0; k++ {
		name := fmt.Sprintf("seed-donor-%03d", k)
		sh := int(stream.Hash64(name) % uint64(shards))
		if covered[sh] {
			continue
		}
		covered[sh] = true
		remaining--
		mask := profile.RandomMask(len(f.truePerf), 12, rng)
		perf := profile.Observe(f.truePerf, mask, 0.02, rng)
		power := profile.Observe(f.truePower, mask, 0.02, rng)
		for _, ev := range []Event{
			{Kind: EvRegister, Tenant: name, Class: "kmeans"},
			{Kind: EvObserve, Tenant: name, ObsIdx: mask, Perf: perf.Values, Power: power.Values},
		} {
			if _, err := issueEvent(base, ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// replayTraffic issues the schedule against base through a fixed client
// pool. Each tenant's events run on one client in schedule order, so the
// per-tenant observe→plan dependency holds; 429 backpressure is honored by
// retrying after a short pause. Returns the observed plan latencies.
func replayTraffic(b *testing.B, base string, events []Event, clients int) []time.Duration {
	perClient := make([][]Event, clients)
	for _, ev := range events {
		c := int(stream.Hash64(ev.Tenant) % uint64(clients))
		perClient[c] = append(perClient[c], ev)
	}
	lats := make([][]time.Duration, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, ev := range perClient[c] {
				lat, err := issueEvent(base, ev)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if ev.Kind == EvPlan {
					lats[c] = append(lats[c], lat)
				}
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	return all
}

// issueEvent performs one traffic event, retrying 429 backpressure.
func issueEvent(base string, ev Event) (time.Duration, error) {
	for attempt := 0; ; attempt++ {
		var (
			resp *http.Response
			err  error
		)
		start := time.Now()
		switch ev.Kind {
		case EvRegister:
			body, _ := json.Marshal(map[string]any{"tenant": ev.Tenant, "class": ev.Class})
			resp, err = http.Post(base+"/v1/register", "application/json", bytes.NewReader(body))
		case EvObserve:
			body, _ := json.Marshal(map[string]any{
				"tenant": ev.Tenant, "obs_idx": ev.ObsIdx, "perf": ev.Perf, "power": ev.Power,
			})
			resp, err = http.Post(base+"/v1/observe", "application/json", bytes.NewReader(body))
		case EvPlan:
			resp, err = http.Get(fmt.Sprintf("%s/v1/plan?tenant=%s&work=%g&deadline=%g",
				base, ev.Tenant, ev.Work, ev.Deadline))
		}
		if err != nil {
			return 0, err
		}
		lat := time.Since(start)
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("%v %s: %d %s", ev.Kind, ev.Tenant, resp.StatusCode, raw)
		}
		return lat, nil
	}
}
