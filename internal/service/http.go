package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"leo/internal/metrics"
	"leo/internal/pareto"
)

// Handler returns the server's HTTP surface: the tenant API under /v1/ on
// top of the standard debug mux (/metrics, /healthz, /debug/pprof), so one
// listener serves both tenants and operators — the same plumbing every
// binary's -metrics-addr flag uses.
//
//	POST /v1/register   {"tenant","class","idle_power"?}
//	POST /v1/observe    {"tenant","obs_idx","perf","power"}
//	GET  /v1/estimate?tenant=NAME
//	GET  /v1/plan?tenant=NAME&work=W&deadline=T
//
// Backpressure is visible in status codes: 429 with Retry-After when a
// shard queue or the session cap is full, 503 once the server is draining.
func (s *Server) Handler() http.Handler {
	mux := metrics.NewDebugMux(nil)
	mux.HandleFunc("/v1/register", s.handleRegister)
	mux.HandleFunc("/v1/observe", s.handleObserve)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders an error reply; 429s carry the server's Retry-After
// hint, derived from the configured scheduling tick.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", s.retryAfter)
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusClientClosedRequest is nginx's non-standard code for a client that
// went away before the reply; no standard status fits and the client will
// never read it anyway — it exists for the access log.
const statusClientClosedRequest = 499

// statusFor maps a shard's typed error to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrUnknownClass):
		return http.StatusBadRequest
	case errors.Is(err, ErrClassMismatch), errors.Is(err, ErrNoEstimates):
		return http.StatusConflict
	case errors.Is(err, ErrTooFewSamples):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrMaxSessions):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// dispatch routes one request to its tenant's shard and waits for the
// reply. Queue-full is backpressure, not failure: the caller gets 429 and
// a Retry-After hint. A shard that shut down mid-wait surfaces as draining,
// and a caller that went away (r.ctx done) gets its context error instead of
// leaving the handler goroutine parked until the shard replies — the reply
// channel is buffered, so the shard never notices the abandonment.
func (s *Server) dispatch(r *request) (response, error) {
	select {
	case <-s.draining:
		mRejectedDraining.Inc()
		return response{}, ErrDraining
	default:
	}
	var ctxDone <-chan struct{}
	if r.ctx != nil {
		ctxDone = r.ctx.Done()
	}
	sh := s.shardFor(r.tenant)
	select {
	case sh.queue <- r:
	default:
		mRejectedQueue.Inc()
		return response{}, fmt.Errorf("%w: shard %d queue full", ErrMaxSessions, sh.id)
	}
	select {
	case resp := <-r.reply:
		return resp, nil
	case <-ctxDone:
		mCanceled.Inc()
		return response{}, fmt.Errorf("service: request abandoned by client: %w", context.Cause(r.ctx))
	case <-sh.done:
		// The shard drained its queue and exited between our enqueue and
		// its final sweep; the request will never be served.
		select {
		case resp := <-r.reply:
			return resp, nil
		default:
			mRejectedDraining.Inc()
			return response{}, ErrDraining
		}
	}
}

// validName rejects tenant/class names that cannot round-trip through the
// persistence metadata (the 0x1f separator) or are unreasonably long.
func validName(s string) bool {
	return s != "" && len(s) <= 1024 && !strings.Contains(s, metaSep)
}

type registerBody struct {
	Tenant    string  `json:"tenant"`
	Class     string  `json:"class"`
	IdlePower float64 `json:"idle_power,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var body registerBody
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad register body: %w", err))
		return
	}
	if !validName(body.Tenant) || !validName(body.Class) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: tenant and class names must be nonempty printable strings"))
		return
	}
	resp, err := s.dispatch(&request{
		ctx:       req.Context(),
		op:        opRegister,
		tenant:    body.Tenant,
		class:     body.Class,
		idlePower: body.IdlePower,
		reply:     make(chan response, 1),
	})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if resp.err != nil {
		s.writeError(w, statusFor(resp.err), resp.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant":  body.Tenant,
		"rung":    resp.rung,
		"windows": resp.windows,
	})
}

type observeBody struct {
	Tenant string    `json:"tenant"`
	ObsIdx []int     `json:"obs_idx"`
	Perf   []float64 `json:"perf"`
	Power  []float64 `json:"power"`
}

func (s *Server) handleObserve(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	defer func() { mObserveLatency.Observe(time.Since(start).Seconds()) }()
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var body observeBody
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad observe body: %w", err))
		return
	}
	if !validName(body.Tenant) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: tenant name required"))
		return
	}
	if len(body.ObsIdx) == 0 || len(body.ObsIdx) != len(body.Perf) || len(body.ObsIdx) != len(body.Power) {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: obs_idx/perf/power must be nonempty and the same length (got %d/%d/%d)",
				len(body.ObsIdx), len(body.Perf), len(body.Power)))
		return
	}
	resp, err := s.dispatch(&request{
		ctx:    req.Context(),
		op:     opObserve,
		tenant: body.Tenant,
		obsIdx: body.ObsIdx,
		perf:   body.Perf,
		power:  body.Power,
		reply:  make(chan response, 1),
	})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if resp.err != nil {
		s.writeError(w, statusFor(resp.err), resp.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"windows": resp.windows,
		"rung":    resp.rung,
		"dropped": resp.dropped,
		"shed":    resp.shed,
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET required"))
		return
	}
	tenantName := req.URL.Query().Get("tenant")
	if !validName(tenantName) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: tenant query parameter required"))
		return
	}
	resp, err := s.dispatch(&request{ctx: req.Context(), op: opEstimate, tenant: tenantName, reply: make(chan response, 1)})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if resp.err != nil {
		s.writeError(w, statusFor(resp.err), resp.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"perf":       resp.perfEst,
		"power":      resp.powerEst,
		"idle_power": resp.idlePower,
		"rung":       resp.rung,
		"windows":    resp.windows,
	})
}

// planReply is the wire form of a pareto.Plan. encoding/json renders
// float64 in shortest-round-trip form, so the decoded plan is bit-identical
// to the shard's — the property the HTTP-vs-controller test pins.
type planReply struct {
	Allocations []pareto.Allocation `json:"allocations"`
	IdleTime    float64             `json:"idle_time"`
	Energy      float64             `json:"energy"`
	Rate        float64             `json:"rate"`
	Rung        string              `json:"rung"`
}

func (s *Server) handlePlan(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	defer func() { mPlanLatency.Observe(time.Since(start).Seconds()) }()
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET required"))
		return
	}
	q := req.URL.Query()
	tenantName := q.Get("tenant")
	if !validName(tenantName) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: tenant query parameter required"))
		return
	}
	var work, deadline float64
	if _, err := fmt.Sscan(q.Get("work"), &work); err != nil || work <= 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("service: positive work query parameter required"))
		return
	}
	if _, err := fmt.Sscan(q.Get("deadline"), &deadline); err != nil || deadline <= 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("service: positive deadline query parameter required"))
		return
	}
	resp, err := s.dispatch(&request{ctx: req.Context(), op: opPlan, tenant: tenantName, work: work, deadline: deadline, reply: make(chan response, 1)})
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if resp.err != nil {
		s.writeError(w, statusFor(resp.err), resp.err)
		return
	}
	writeJSON(w, http.StatusOK, planReply{
		Allocations: resp.plan.Allocations,
		IdleTime:    resp.plan.IdleTime,
		Energy:      resp.plan.Energy,
		Rate:        resp.plan.Rate,
		Rung:        resp.rung,
	})
}
