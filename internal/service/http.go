package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"leo/internal/metrics"
	"leo/internal/pareto"
)

// Handler returns the server's HTTP surface: the tenant API under /v1/ on
// top of the standard debug mux (/metrics, /healthz, /debug/pprof), so one
// listener serves both tenants and operators — the same plumbing every
// binary's -metrics-addr flag uses.
//
//	POST /v1/register   {"tenant","class","idle_power"?}
//	POST /v1/observe    {"tenant","obs_idx","perf","power"}
//	GET  /v1/estimate?tenant=NAME
//	GET  /v1/plan?tenant=NAME&work=W&deadline=T
//
// Backpressure is visible in status codes: 429 with Retry-After when a
// shard queue or the session cap is full, 503 once the server is draining.
func (s *Server) Handler() http.Handler {
	mux := metrics.NewDebugMux(nil)
	mux.HandleFunc("/v1/register", s.handleRegister)
	mux.HandleFunc("/v1/observe", s.handleObserve)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

// onceWriter forwards writes until the first failure, then swallows the
// rest: once part of a reply is lost there is no way to resynchronize the
// stream, so truncating beats interleaving later fragments.
type onceWriter struct {
	w   io.Writer
	err error
}

func (o *onceWriter) Write(p []byte) (int, error) {
	if o.err != nil {
		return 0, o.err
	}
	n, err := o.w.Write(p)
	if err != nil {
		o.err = err
	}
	return n, err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(&onceWriter{w: w}).Encode(v); err != nil {
		mEncodeErrors.Inc()
	}
}

// writeRaw sends a pre-encoded JSON body (a memoized plan reply or a pooled
// observe buffer).
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		mEncodeErrors.Inc()
	}
}

// requestPool recycles request structs together with their one-slot reply
// channels. A request may be recycled only by whoever is certain the shard
// will never touch it again: dispatch does so after consuming the reply or
// when the enqueue itself failed, and never on the abandoned paths, where
// the shard still owns the struct and will drop a reply into the channel.
var requestPool = sync.Pool{New: func() any { return &request{reply: make(chan response, 1)} }}

func getRequest() *request {
	r := requestPool.Get().(*request)
	reply := r.reply
	*r = request{reply: reply}
	return r
}

// writeError renders an error reply; 429s carry the server's Retry-After
// hint, derived from the configured scheduling tick.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", s.retryAfter)
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusClientClosedRequest is nginx's non-standard code for a client that
// went away before the reply; no standard status fits and the client will
// never read it anyway — it exists for the access log.
const statusClientClosedRequest = 499

// statusFor maps a shard's typed error to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrUnknownClass):
		return http.StatusBadRequest
	case errors.Is(err, ErrClassMismatch), errors.Is(err, ErrNoEstimates),
		errors.Is(err, ErrNoFeasiblePlan):
		return http.StatusConflict
	case errors.Is(err, ErrTooFewSamples):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrMaxSessions):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// dispatch routes one request to its tenant's shard and waits for the
// reply. Queue-full is backpressure, not failure: the caller gets 429 and
// a Retry-After hint. A shard that shut down mid-wait surfaces as draining,
// and a caller that went away (r.ctx done) gets its context error instead of
// leaving the handler goroutine parked until the shard replies — the reply
// channel is buffered, so the shard never notices the abandonment.
func (s *Server) dispatch(r *request) (response, error) {
	select {
	case <-s.draining:
		mRejectedDraining.Inc()
		requestPool.Put(r)
		return response{}, ErrDraining
	default:
	}
	var ctxDone <-chan struct{}
	if r.ctx != nil {
		ctxDone = r.ctx.Done()
	}
	sh := s.shardFor(r.tenant)
	select {
	case sh.queue <- r:
	default:
		mRejectedQueue.Inc()
		id := sh.id
		requestPool.Put(r)
		return response{}, fmt.Errorf("%w: shard %d queue full", ErrMaxSessions, id)
	}
	select {
	case resp := <-r.reply:
		requestPool.Put(r)
		return resp, nil
	case <-ctxDone:
		mCanceled.Inc()
		return response{}, fmt.Errorf("service: request abandoned by client: %w", context.Cause(r.ctx))
	case <-sh.done:
		// The shard drained its queue and exited between our enqueue and
		// its final sweep; the request will never be served.
		select {
		case resp := <-r.reply:
			requestPool.Put(r)
			return resp, nil
		default:
			mRejectedDraining.Inc()
			return response{}, ErrDraining
		}
	}
}

// validName rejects tenant/class names that cannot round-trip through the
// persistence metadata (the 0x1f separator) or are unreasonably long.
func validName(s string) bool {
	return s != "" && len(s) <= 1024 && !strings.Contains(s, metaSep)
}

type registerBody struct {
	Tenant    string  `json:"tenant"`
	Class     string  `json:"class"`
	IdlePower float64 `json:"idle_power,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var body registerBody
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad register body: %w", err))
		return
	}
	if !validName(body.Tenant) || !validName(body.Class) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: tenant and class names must be nonempty printable strings"))
		return
	}
	r := getRequest()
	r.ctx = req.Context()
	r.op = opRegister
	r.tenant = body.Tenant
	r.class = body.Class
	r.idlePower = body.IdlePower
	resp, err := s.dispatch(r)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if resp.err != nil {
		s.writeError(w, statusFor(resp.err), resp.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant":  body.Tenant,
		"rung":    resp.rung,
		"windows": resp.windows,
	})
}

type observeBody struct {
	Tenant string    `json:"tenant"`
	ObsIdx []int     `json:"obs_idx"`
	Perf   []float64 `json:"perf"`
	Power  []float64 `json:"power"`
}

func (s *Server) handleObserve(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	defer func() { mObserveLatency.Observe(time.Since(start).Seconds()) }()
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var body observeBody
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad observe body: %w", err))
		return
	}
	if !validName(body.Tenant) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: tenant name required"))
		return
	}
	if len(body.ObsIdx) == 0 || len(body.ObsIdx) != len(body.Perf) || len(body.ObsIdx) != len(body.Power) {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: obs_idx/perf/power must be nonempty and the same length (got %d/%d/%d)",
				len(body.ObsIdx), len(body.Perf), len(body.Power)))
		return
	}
	r := getRequest()
	r.ctx = req.Context()
	r.op = opObserve
	r.tenant = body.Tenant
	r.obsIdx = body.ObsIdx
	r.perf = body.Perf
	r.power = body.Power
	resp, err := s.dispatch(r)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if resp.err != nil {
		s.writeError(w, statusFor(resp.err), resp.err)
		return
	}
	// Render without encoding/json: the reply is four fixed fields, and this
	// path runs once per observation window fleet-wide. Byte-identical to
	// the map encoding it replaces (alphabetical keys, trailing newline).
	bp := replyBufPool.Get().(*[]byte)
	b := appendObserveJSON((*bp)[:0], resp.windows, resp.dropped, resp.rung, resp.shed)
	writeRaw(w, http.StatusOK, b)
	*bp = b[:0]
	replyBufPool.Put(bp)
}

// replyBufPool recycles observe reply buffers across handler goroutines.
var replyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

func (s *Server) handleEstimate(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET required"))
		return
	}
	tenantName := req.URL.Query().Get("tenant")
	if !validName(tenantName) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: tenant query parameter required"))
		return
	}
	r := getRequest()
	r.ctx = req.Context()
	r.op = opEstimate
	r.tenant = tenantName
	resp, err := s.dispatch(r)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if resp.err != nil {
		s.writeError(w, statusFor(resp.err), resp.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"perf":       resp.perfEst,
		"power":      resp.powerEst,
		"idle_power": resp.idlePower,
		"rung":       resp.rung,
		"windows":    resp.windows,
	})
}

// planReply is the wire form of a pareto.Plan. encoding/json renders
// float64 in shortest-round-trip form, so the decoded plan is bit-identical
// to the shard's — the property the HTTP-vs-controller test pins. The hot
// path renders the same shape through appendPlanJSON without allocating;
// this struct remains for non-finite fallbacks and must keep its field
// order in lockstep with that encoder.
type planReply struct {
	Allocations []pareto.Allocation `json:"allocations"`
	IdleTime    float64             `json:"idle_time"`
	Energy      float64             `json:"energy"`
	Rate        float64             `json:"rate"`
	Rung        string              `json:"rung"`
	Gen         uint64              `json:"gen"`
}

// planQuery pulls one parameter out of a raw (still escaped) query string
// without materializing a url.Values map — /v1/plan is the fleet's hottest
// endpoint and its three floats don't justify a map per request. Returns
// the unescaped value and whether the key was present.
func planQuery(rawQuery, key string) (string, bool) {
	for len(rawQuery) > 0 {
		pair := rawQuery
		if i := strings.IndexByte(pair, '&'); i >= 0 {
			pair, rawQuery = pair[:i], pair[i+1:]
		} else {
			rawQuery = ""
		}
		k, v, _ := strings.Cut(pair, "=")
		if k != key {
			continue
		}
		if strings.ContainsAny(v, "%+") {
			if u, err := url.QueryUnescape(v); err == nil {
				return u, true
			}
			return "", false
		}
		return v, true
	}
	return "", false
}

func (s *Server) handlePlan(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	defer func() { mPlanLatency.Observe(time.Since(start).Seconds()) }()
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET required"))
		return
	}
	rawQuery := req.URL.RawQuery
	tenantName, _ := planQuery(rawQuery, "tenant")
	if !validName(tenantName) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: tenant query parameter required"))
		return
	}
	var deadline float64
	if v, ok := planQuery(rawQuery, "deadline"); ok {
		deadline, _ = strconv.ParseFloat(v, 64)
	}
	if !(deadline > 0) {
		s.writeError(w, http.StatusBadRequest, errors.New("service: positive deadline query parameter required"))
		return
	}
	workStr, hasWork := planQuery(rawQuery, "work")
	capStr, hasCap := planQuery(rawQuery, "cap")
	if hasWork == hasCap {
		s.writeError(w, http.StatusBadRequest, errors.New("service: exactly one of work (minimize energy) or cap (maximize work under a power cap) is required"))
		return
	}
	var work, powerCap float64
	if hasCap {
		powerCap, _ = strconv.ParseFloat(capStr, 64)
		if !(powerCap > 0) {
			s.writeError(w, http.StatusBadRequest, errors.New("service: positive cap query parameter required"))
			return
		}
	} else {
		work, _ = strconv.ParseFloat(workStr, 64)
		if !(work > 0) {
			s.writeError(w, http.StatusBadRequest, errors.New("service: positive work query parameter required"))
			return
		}
	}
	r := getRequest()
	r.ctx = req.Context()
	r.op = opPlan
	r.tenant = tenantName
	r.deadline = deadline
	r.work = work
	r.powerCap = powerCap
	r.capped = hasCap
	resp, err := s.dispatch(r)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	if resp.err != nil {
		s.writeError(w, statusFor(resp.err), resp.err)
		return
	}
	if resp.planJSON != nil {
		writeRaw(w, http.StatusOK, resp.planJSON)
		return
	}
	writeJSON(w, http.StatusOK, planReply{
		Allocations: resp.plan.Allocations,
		IdleTime:    resp.plan.IdleTime,
		Energy:      resp.plan.Energy,
		Rate:        resp.plan.Rate,
		Rung:        resp.rung,
		Gen:         resp.gen,
	})
}
