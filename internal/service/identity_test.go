package service

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"leo/internal/apps"
	"leo/internal/baseline"
	"leo/internal/control"
	"leo/internal/core"
	"leo/internal/machine"
	"leo/internal/pareto"
	"leo/internal/platform"
	"leo/internal/profile"
)

// TestHTTPPlanMatchesControllerBitForBit is the acceptance gate for the
// serving layer: a plan served over HTTP must be bit-identical to the plan
// an in-process control.Controller computes from the same prior, the same
// observations, and the same seeds. The test replays the controller's exact
// calibration life — same probe masks (cloned controller rng), same raw
// readings (cloned machine rng), in the same order — through the HTTP API,
// then compares estimates and the plan field by field with Float64bits.
// JSON is safe in the loop because Go marshals float64 in shortest
// round-trip form.
func TestHTTPPlanMatchesControllerBitForBit(t *testing.T) {
	const (
		machineSeed = 101
		controlSeed = 42
		noise       = 0.01
		samples     = 20
		windows     = 3
		work        = 500.0
		deadline    = 10.0
	)
	space := platform.Small()
	app := apps.MustByName("kmeans")
	db, err := profile.Collect(space, apps.Suite(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.AppIndex(app.Name)
	if err != nil {
		t.Fatal(err)
	}
	rest, _, _, err := db.LeaveOneOut(idx)
	if err != nil {
		t.Fatal(err)
	}

	// In-process controller, session (warm) calibration mode.
	mach, err := machine.New(space, app, noise, rand.New(rand.NewSource(machineSeed)))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := control.New("LEO", mach,
		baseline.NewLEO(rest.Perf, core.Options{}),
		baseline.NewLEO(rest.Power, core.Options{}),
		samples, rand.New(rand.NewSource(controlSeed)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < windows; i++ {
		if err := ctrl.Calibrate(); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
	wantPlan, err := ctrl.Plan(work, deadline)
	if err != nil {
		t.Fatal(err)
	}
	wantPerf, wantPower := ctrl.Estimates()

	// Estimation server over the same priors.
	perfPrior, err := core.NewPrior(rest.Perf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	powerPrior, err := core.NewPrior(rest.Power, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tiers, err := StandardLadder(space, perfPrior, powerPrior, rest.Perf, rest.Power)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Space:   space,
		Classes: []Class{{Name: "kmeans", Tiers: tiers, IdlePower: app.IdlePower}},
		Shards:  2,
	}
	_, ts := startServer(t, cfg)
	register(t, ts.URL, "kmeans-1", "kmeans", app.IdlePower)

	// Replay the controller's probe stream: clone both rngs and walk the
	// identical draw sequence — mask from the control lane, then one perf
	// and one power reading per probe from the machine lane.
	mach2, err := machine.New(space, app, noise, rand.New(rand.NewSource(machineSeed)))
	if err != nil {
		t.Fatal(err)
	}
	ctrlRng := rand.New(rand.NewSource(controlSeed))
	for i := 0; i < windows; i++ {
		mask := profile.RandomMask(space.N(), samples, ctrlRng)
		rawPerf := make([]float64, len(mask))
		rawPower := make([]float64, len(mask))
		for j, cidx := range mask {
			c := space.ConfigAt(cidx)
			rawPerf[j] = mach2.MeasurePerf(c)
			rawPower[j] = mach2.MeasurePower(c)
		}
		code, body := postJSON(t, ts.URL+"/v1/observe",
			map[string]any{"tenant": "kmeans-1", "obs_idx": mask, "perf": rawPerf, "power": rawPower})
		if code != http.StatusOK {
			t.Fatalf("observe window %d: %d %s", i, code, body["error"])
		}
	}

	// Estimates must round-trip bit-for-bit.
	code, est := getJSON(t, ts.URL+"/v1/estimate?tenant=kmeans-1")
	if code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, est["error"])
	}
	var gotPerf, gotPower []float64
	if err := json.Unmarshal(est["perf"], &gotPerf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(est["power"], &gotPower); err != nil {
		t.Fatal(err)
	}
	requireSameVector(t, "perf", gotPerf, wantPerf)
	requireSameVector(t, "power", gotPower, wantPower)

	// And so must the plan.
	resp, err := http.Get(ts.URL + "/v1/plan?tenant=kmeans-1&work=500&deadline=10")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, raw)
	}
	var got struct {
		Allocations []pareto.Allocation `json:"allocations"`
		IdleTime    float64             `json:"idle_time"`
		Energy      float64             `json:"energy"`
		Rate        float64             `json:"rate"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Allocations) != len(wantPlan.Allocations) {
		t.Fatalf("allocations: got %d, want %d", len(got.Allocations), len(wantPlan.Allocations))
	}
	for i, a := range got.Allocations {
		w := wantPlan.Allocations[i]
		if a.Index != w.Index || math.Float64bits(a.Time) != math.Float64bits(w.Time) {
			t.Fatalf("allocation %d: got {%d %v}, want {%d %v}", i, a.Index, a.Time, w.Index, w.Time)
		}
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"idle_time", got.IdleTime, wantPlan.IdleTime},
		{"energy", got.Energy, wantPlan.Energy},
		{"rate", got.Rate, wantPlan.Rate},
	} {
		if math.Float64bits(c.got) != math.Float64bits(c.want) {
			t.Fatalf("%s: got %v (%x), want %v (%x)", c.name,
				c.got, math.Float64bits(c.got), c.want, math.Float64bits(c.want))
		}
	}
}

func requireSameVector(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: got %v (%x), want %v (%x)", what, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestBatchedWindowsMatchSerialWindows drives the same tenant windows
// through one shard as a single coalesced batch and through another shard
// one request at a time, and requires bit-identical published estimates —
// the serving-layer face of core.FitBatch's bit-identity guarantee.
func TestBatchedWindowsMatchSerialWindows(t *testing.T) {
	f := newFixture(t)
	const tenants = 4

	build := func() *shard {
		cfg := f.config().withDefaults()
		srv := &Server{
			cfg:      cfg,
			classes:  map[string]*Class{"kmeans": &f.classes[0]},
			draining: make(chan struct{}),
			admitted: make(chan struct{}, cfg.MaxSessions),
		}
		sh, err := newShard(srv, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tenants; i++ {
			r := &request{op: opRegister, tenant: tenantName(i), class: "kmeans", reply: make(chan response, 1)}
			sh.register(r)
			if resp := <-r.reply; resp.err != nil {
				t.Fatal(resp.err)
			}
		}
		return sh
	}
	mkWindows := func() [][]*request {
		// Two rounds per tenant (cold then warm), distinct seeded windows.
		rounds := make([][]*request, 2)
		for round := range rounds {
			for i := 0; i < tenants; i++ {
				rng := rand.New(rand.NewSource(int64(1000 + 10*round + i)))
				mask := profile.RandomMask(f.space.N(), 14, rng)
				perf := profile.Observe(f.truePerf, mask, 0.02, rng)
				power := profile.Observe(f.truePower, mask, 0.02, rng)
				rounds[round] = append(rounds[round], &request{
					op: opObserve, tenant: tenantName(i),
					obsIdx: mask, perf: perf.Values, power: power.Values,
					reply: make(chan response, 1),
				})
			}
		}
		return rounds
	}

	batched := build()
	for _, round := range mkWindows() {
		sh := batched
		sh.process(round, false) // all four tenants in one tick: one FitBatch per metric
		for _, r := range round {
			if resp := <-r.reply; resp.err != nil {
				t.Fatal(resp.err)
			}
		}
	}

	serial := build()
	for _, round := range mkWindows() {
		for _, r := range round {
			serial.process([]*request{r}, false)
			if resp := <-r.reply; resp.err != nil {
				t.Fatal(resp.err)
			}
		}
	}

	for i := 0; i < tenants; i++ {
		b := batched.tenants[tenantName(i)]
		s := serial.tenants[tenantName(i)]
		requireSameVector(t, tenantName(i)+" perf", b.perfEst, s.perfEst)
		requireSameVector(t, tenantName(i)+" power", b.powerEst, s.powerEst)
	}
}

func tenantName(i int) string {
	return string(rune('a'+i)) + "-tenant"
}
