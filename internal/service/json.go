package service

import (
	"math"
	"strconv"
	"unicode/utf8"

	"leo/internal/pareto"
)

// Hand-rolled JSON rendering for the serving hot path. The output is
// byte-identical to encoding/json marshalling of the same values (shortest
// round-trip floats, the same exponent-format thresholds and cleanup, the
// same HTML-escaped strings, a trailing newline like json.Encoder), so the
// bit-identity contract between HTTP plans and in-process controllers is
// preserved while steady-state plan serving allocates nothing per request.

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest form that round-trips, 'e' format only for very small or very
// large magnitudes, with the two-digit negative exponent shortened. Returns
// ok=false for NaN/Inf, which encoding/json refuses to encode.
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string following encoding/json's
// default (HTML-escaping) rules: ", \, control characters, <, >, &, the
// line separators U+2028/U+2029, and invalid UTF-8 are escaped; everything
// else passes through verbatim.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendPlanJSON renders the /v1/plan success body — the wire form of
// planReply — byte-for-byte as json.Encoder would. ok=false means the plan
// carries a non-finite float and the caller must take the encoding/json
// path (which fails the same way it always has).
func appendPlanJSON(dst []byte, plan *pareto.Plan, rung string, gen uint64) (_ []byte, ok bool) {
	dst = append(dst, `{"allocations":`...)
	if plan.Allocations == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, a := range plan.Allocations {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"Index":`...)
			dst = strconv.AppendInt(dst, int64(a.Index), 10)
			dst = append(dst, `,"Time":`...)
			if dst, ok = appendJSONFloat(dst, a.Time); !ok {
				return dst, false
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"idle_time":`...)
	if dst, ok = appendJSONFloat(dst, plan.IdleTime); !ok {
		return dst, false
	}
	dst = append(dst, `,"energy":`...)
	if dst, ok = appendJSONFloat(dst, plan.Energy); !ok {
		return dst, false
	}
	dst = append(dst, `,"rate":`...)
	if dst, ok = appendJSONFloat(dst, plan.Rate); !ok {
		return dst, false
	}
	dst = append(dst, `,"rung":`...)
	dst = appendJSONString(dst, rung)
	dst = append(dst, `,"gen":`...)
	dst = strconv.AppendUint(dst, gen, 10)
	dst = append(dst, '}', '\n')
	return dst, true
}

// appendObserveJSON renders the /v1/observe success body in the same
// (alphabetical) key order encoding/json gives the map the handler
// historically marshalled.
func appendObserveJSON(dst []byte, windows, dropped int, rung string, shed bool) []byte {
	dst = append(dst, `{"dropped":`...)
	dst = strconv.AppendInt(dst, int64(dropped), 10)
	dst = append(dst, `,"rung":`...)
	dst = appendJSONString(dst, rung)
	dst = append(dst, `,"shed":`...)
	dst = strconv.AppendBool(dst, shed)
	dst = append(dst, `,"windows":`...)
	dst = strconv.AppendInt(dst, int64(windows), 10)
	return append(dst, '}', '\n')
}
