package service

import (
	"strconv"

	"leo/internal/metrics"
)

// Fleet-level observability. Shard-scoped instruments carry a constant
// "shard" label and live on the same default registry as everything else,
// so -metrics-addr exposes the whole serving picture without new plumbing.
var (
	mTenants = metrics.NewGauge("leo_service_tenants",
		"tenants currently admitted across all shards")
	mRegisters = metrics.NewCounter("leo_service_registers_total",
		"successful tenant registrations")
	mWindows = metrics.NewCounter("leo_service_windows_total",
		"observation windows accepted and fitted")
	mShedWindows = metrics.NewCounter("leo_service_shed_windows_total",
		"windows served by a load-shedding rung instead of the tenant's own")
	mEstimationFailures = metrics.NewCounter("leo_service_estimation_failures_total",
		"tenant windows whose fit or validation failed")
	mDegrades = metrics.NewCounter("leo_service_degrades_total",
		"sticky tenant demotions down the fallback ladder")
	mRejectedQueue = metrics.NewCounter("leo_service_rejected_total",
		"requests rejected by backpressure or admission control",
		metrics.Label{Key: "reason", Value: "queue_full"})
	mRejectedSessions = metrics.NewCounter("leo_service_rejected_total",
		"requests rejected by backpressure or admission control",
		metrics.Label{Key: "reason", Value: "max_sessions"})
	mRejectedDraining = metrics.NewCounter("leo_service_rejected_total",
		"requests rejected by backpressure or admission control",
		metrics.Label{Key: "reason", Value: "draining"})
	mCanceled = metrics.NewCounter("leo_service_rejected_total",
		"requests rejected by backpressure or admission control",
		metrics.Label{Key: "reason", Value: "client_canceled"})
	mRestoredTenants = metrics.NewCounter("leo_service_restored_tenants_total",
		"tenants reconstructed from per-shard snapshots and journals")
	mEncodeErrors = metrics.NewCounter("leo_service_encode_errors",
		"HTTP responses whose JSON encoding failed mid-write")
	mPlanCacheHits = metrics.NewCounter("leo_service_plan_cache_total",
		"plan requests answered from or missing the per-tenant plan cache",
		metrics.Label{Key: "result", Value: "hit"})
	mPlanCacheMisses = metrics.NewCounter("leo_service_plan_cache_total",
		"plan requests answered from or missing the per-tenant plan cache",
		metrics.Label{Key: "result", Value: "miss"})
	mSeedCaptures = metrics.NewCounter("leo_service_seed_captures_total",
		"class posteriors captured as cold-start seeds")
	mSeedTransfers = metrics.NewCounter("leo_service_seed_transfers_total",
		"tenants admitted warm from a captured class posterior")

	// Latency is measured in the HTTP layer (queueing included — that is
	// what a tenant experiences), depth at batch gather time.
	mPlanLatency = metrics.NewHistogram("leo_service_plan_seconds",
		"HTTP plan latency, request receipt to reply",
		metrics.ExponentialBuckets(1e-5, 2, 22))
	mObserveLatency = metrics.NewHistogram("leo_service_observe_seconds",
		"HTTP observe latency, request receipt to reply",
		metrics.ExponentialBuckets(1e-5, 2, 22))
	mBatchSize = metrics.NewHistogram("leo_service_batch_requests",
		"requests coalesced per shard scheduling tick",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
)

// shardMetrics are the per-shard gauges, registered once per shard index
// with a constant label.
type shardMetrics struct {
	tenants *metrics.Gauge
	queue   *metrics.Gauge
}

func newShardMetrics(id int) shardMetrics {
	l := metrics.Label{Key: "shard", Value: strconv.Itoa(id)}
	return shardMetrics{
		tenants: metrics.NewGauge("leo_service_shard_tenants",
			"tenants owned by this shard", l),
		queue: metrics.NewGauge("leo_service_shard_queue_depth",
			"requests waiting in this shard's queue at the last tick", l),
	}
}
