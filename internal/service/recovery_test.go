package service

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"leo/internal/persist"
	"leo/internal/profile"
)

// TestRestartRecoversTenantsAndEstimates: a gracefully stopped server
// snapshots every shard; a successor over the same StateDir serves the same
// tenants with bit-identical estimates immediately. Deleting the snapshots
// then forces the journal-replay path — tenants and estimates must be
// rebuilt bit-identically from the windows alone, which exercises the
// replay-equals-live invariant the journal format exists for.
func TestRestartRecoversTenantsAndEstimates(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	cfg := f.config()
	cfg.StateDir = dir
	cfg.Shards = 2

	const tenants = 5
	names := make([]string, tenants)
	for i := range names {
		names[i] = tenantName(i)
	}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	for _, name := range names {
		register(t, ts1.URL, name, "kmeans", f.idle)
	}
	// Two windows per tenant: the second refits warm, so recovery must
	// restore the warm posterior, not just the observations.
	for round := 0; round < 2; round++ {
		for i, name := range names {
			rng := rand.New(rand.NewSource(int64(5000 + 10*round + i)))
			mask := profile.RandomMask(f.space.N(), 12, rng)
			perf := profile.Observe(f.truePerf, mask, 0.02, rng)
			power := profile.Observe(f.truePower, mask, 0.02, rng)
			code, body := postJSON(t, ts1.URL+"/v1/observe",
				map[string]any{"tenant": name, "obs_idx": mask, "perf": perf.Values, "power": power.Values})
			if code != http.StatusOK {
				t.Fatalf("observe %s round %d: %d %s", name, round, code, body["error"])
			}
		}
	}
	want := make(map[string][2][]float64, tenants)
	for _, name := range names {
		want[name] = fetchEstimates(t, ts1.URL, name)
	}
	ts1.Close()
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Generation 2: snapshot-backed recovery.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	for _, name := range names {
		got := fetchEstimates(t, ts2.URL, name)
		requireSameVector(t, name+" perf (snapshot recovery)", got[0], want[name][0])
		requireSameVector(t, name+" power (snapshot recovery)", got[1], want[name][1])
	}
	// A recovered tenant keeps serving new windows (and the restored warm
	// session accepts them).
	rng := rand.New(rand.NewSource(9999))
	mask := profile.RandomMask(f.space.N(), 12, rng)
	perf := profile.Observe(f.truePerf, mask, 0.02, rng)
	power := profile.Observe(f.truePower, mask, 0.02, rng)
	code, body := postJSON(t, ts2.URL+"/v1/observe",
		map[string]any{"tenant": names[0], "obs_idx": mask, "perf": perf.Values, "power": power.Values})
	if code != http.StatusOK {
		t.Fatalf("post-recovery observe: %d %s", code, body["error"])
	}
	var windows int
	if err := json.Unmarshal(body["windows"], &windows); err != nil {
		t.Fatal(err)
	}
	if windows != 3 {
		t.Fatalf("post-recovery window count %d, want 3", windows)
	}
	want3 := fetchEstimates(t, ts2.URL, names[0])
	ts2.Close()
	if err := s2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Generation 3: crash-shaped recovery. Remove every snapshot so only
	// the journals remain; replay must rebuild the same estimates — for
	// names[0] including the post-recovery third window.
	for shard := 0; shard < cfg.Shards; shard++ {
		for _, snap := range []string{"snapshot.bin", "snapshot.prev"} {
			path := filepath.Join(persist.ShardDir(dir, shard), snap)
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
		}
	}
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(s3.Handler())
	t.Cleanup(func() {
		ts3.Close()
		if err := s3.Close(context.Background()); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	for _, name := range names[1:] {
		got := fetchEstimates(t, ts3.URL, name)
		requireSameVector(t, name+" perf (journal replay)", got[0], want[name][0])
		requireSameVector(t, name+" power (journal replay)", got[1], want[name][1])
	}
	// names[0] saw a third window in generation 2; journal replay must
	// land on exactly those estimates, not the two-window ones.
	got := fetchEstimates(t, ts3.URL, names[0])
	requireSameVector(t, names[0]+" perf (journal replay, 3 windows)", got[0], want3[0])
	requireSameVector(t, names[0]+" power (journal replay, 3 windows)", got[1], want3[1])
}

func fetchEstimates(t testing.TB, base, tenant string) [2][]float64 {
	t.Helper()
	code, est := getJSON(t, base+"/v1/estimate?tenant="+tenant)
	if code != http.StatusOK {
		t.Fatalf("estimate %s: %d %s", tenant, code, est["error"])
	}
	var perf, power []float64
	if err := json.Unmarshal(est["perf"], &perf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(est["power"], &power); err != nil {
		t.Fatal(err)
	}
	return [2][]float64{perf, power}
}
