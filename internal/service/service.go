// Package service turns the one-shot estimation driver into a long-running,
// multi-tenant estimation server: the fleet-scale deployment of the paper's
// online estimator. Thousands of tenants (application instances reporting
// probe windows from their own machines) share a handful of immutable
// core.Priors — one per application class — while each keeps its own warm
// core.Session, so the marginal cost of a tenant is one warm refit per
// window (sub-millisecond, PR 7) plus a few kilobytes of posterior.
//
// Architecture (DESIGN.md §13):
//
//   - Sessions are sharded across a fixed set of worker shards by FNV hash
//     of the tenant name. Each shard is a single goroutine that owns its
//     tenants outright — requests arrive over a bounded channel and are
//     answered in batches, so no session is ever touched by two goroutines
//     and no per-session lock exists anywhere.
//   - A refit scheduler inside each shard coalesces the windows that arrive
//     within one scheduling tick and refits all dirty sessions of the same
//     Prior in one core.FitBatch pass per metric.
//   - Admission control and backpressure: a global tenant cap (429 on
//     register past it), bounded per-shard queues (429 + Retry-After when
//     full), and a load-shedding rung that serves refits from the cheaper
//     Online/Offline ladder when a shard falls behind, instead of failing
//     tenants outright.
//   - Each shard persists its tenants into its own snapshot+journal
//     directory (persist.OpenShard); recovery replays exactly like the
//     single-controller path and is bit-identical for journaled windows.
//
// Estimation itself is the controller's calibrate-window code path
// (control.FilterWindow → FitWindow → ValidateEstimates →
// SanitizeEstimates) — shared, not reimplemented — which is why a plan
// served over HTTP is bit-identical to what an in-process
// control.Controller produces from the same prior, observations and seeds.
package service

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"leo/internal/baseline"
	"leo/internal/control"
	"leo/internal/core"
	"leo/internal/matrix"
	"leo/internal/platform"
	"leo/internal/stream"
)

// Class is one application class tenants can register under: a fallback
// ladder of estimator tiers (tiers[0] is the primary, normally LEO over the
// class's shared priors) plus the idle power used in planning when a tenant
// does not report its own.
type Class struct {
	Name      string
	Tiers     []control.Tier
	IdlePower float64
}

// StandardLadder builds the canonical degradation ladder for a class: LEO
// over the shared perf/power priors, then the Online polynomial baseline,
// then the Offline profile-mean baseline. It mirrors the ladder the
// controller runs under fault injection, minus the terminal race-to-idle
// rung — a server cannot race-to-idle on a tenant's behalf; the bottom of
// the service ladder is the estimator that cannot fail.
func StandardLadder(space platform.Space, perfPrior, powerPrior *core.Prior, knownPerf, knownPower *matrix.Matrix) ([]control.Tier, error) {
	offPerf, err := baseline.NewOffline(knownPerf)
	if err != nil {
		return nil, fmt.Errorf("service: offline perf tier: %w", err)
	}
	offPower, err := baseline.NewOffline(knownPower)
	if err != nil {
		return nil, fmt.Errorf("service: offline power tier: %w", err)
	}
	return []control.Tier{
		{Name: "LEO", Perf: baseline.NewLEOFromPrior(perfPrior), Power: baseline.NewLEOFromPrior(powerPrior)},
		{Name: "Online", Perf: baseline.NewOnline(space), Power: baseline.NewOnline(space)},
		{Name: "Offline", Perf: offPerf, Power: offPower},
	}, nil
}

// Defaults for Config zero values.
const (
	DefaultShards      = 4
	DefaultMaxSessions = 65536
	DefaultQueueDepth  = 256
	DefaultBatchMax    = 64
)

// Config configures a Server. Zero values select the defaults above;
// Classes and Space are required.
type Config struct {
	// Space is the configuration space estimates and plans cover.
	Space platform.Space
	// Classes are the application classes tenants may register under.
	Classes []Class
	// Shards is the number of single-writer worker shards.
	Shards int
	// MaxSessions caps admitted tenants across all shards; registration
	// past the cap is rejected 429 (admission control, not an error).
	MaxSessions int
	// QueueDepth bounds each shard's request queue; a full queue rejects
	// 429 + Retry-After (backpressure).
	QueueDepth int
	// BatchMax caps how many queued requests one scheduling tick drains.
	BatchMax int
	// TickInterval paces each shard's refit scheduler: after its first queued
	// request a shard gathers more work for up to one tick (or until BatchMax)
	// before fitting the batch, trading latency for larger coalesced refits.
	// It is also what the 429 Retry-After hint is derived from — a
	// backpressured client should stay away for at least one tick. Zero (the
	// default) keeps the event-driven scheduler: batches are whatever has
	// already queued, and Retry-After is 1 second.
	TickInterval time.Duration
	// Resilience tunes the per-tenant estimation policy exactly as it does
	// the controller's (watchdog, jitter budget, failure ladder).
	Resilience control.Resilience
	// StateDir, when set, makes tenant state crash-safe: each shard opens
	// StateDir/shard-NNN as its own snapshot+journal store.
	StateDir string
	// DefaultIdlePower is used for classes whose IdlePower is zero and
	// tenants that do not report their own.
	DefaultIdlePower float64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.BatchMax <= 0 {
		c.BatchMax = DefaultBatchMax
	}
	c.Resilience = c.Resilience.WithDefaults()
	return c
}

// Server is the estimation service: an HTTP/JSON front end (Handler) over
// fixed worker shards. Create with New, serve Handler, stop with Close.
type Server struct {
	cfg     Config
	classes map[string]*Class
	shards  []*shard

	// retryAfter is the 429 backoff hint in whole seconds, derived from the
	// configured scheduling tick (see retryAfterSeconds).
	retryAfter string

	draining  chan struct{} // closed by Close: reject new work with 503
	admitted  chan struct{} // counting semaphore of tenant slots
	closeOnce sync.Once
	closeErr  error
}

// retryAfterSeconds derives the Retry-After hint from the shard scheduling
// tick: the next batch is at most one tick away, so the hint is the tick
// rounded up to whole seconds (the header's granularity), never below 1.
func retryAfterSeconds(tick time.Duration) string {
	secs := int64(math.Ceil(tick.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// New builds a server and starts its shard workers (recovering each shard's
// tenants from StateDir first, when configured).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Space.N() == 0 {
		return nil, fmt.Errorf("service: empty configuration space")
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("service: no application classes configured")
	}
	s := &Server{
		cfg:        cfg,
		classes:    make(map[string]*Class, len(cfg.Classes)),
		retryAfter: retryAfterSeconds(cfg.TickInterval),
		draining:   make(chan struct{}),
		admitted:   make(chan struct{}, cfg.MaxSessions),
	}
	for i := range cfg.Classes {
		cl := &cfg.Classes[i]
		if cl.Name == "" || len(cl.Tiers) == 0 {
			return nil, fmt.Errorf("service: class %d needs a name and at least one tier", i)
		}
		if _, dup := s.classes[cl.Name]; dup {
			return nil, fmt.Errorf("service: duplicate class %q", cl.Name)
		}
		if cl.IdlePower == 0 {
			cl.IdlePower = cfg.DefaultIdlePower
		}
		s.classes[cl.Name] = cl
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh, err := newShard(s, i)
		if err != nil {
			for _, prev := range s.shards[:i] {
				prev.closeStore()
			}
			return nil, err
		}
		s.shards[i] = sh
	}
	for _, sh := range s.shards {
		go sh.run()
	}
	return s, nil
}

// Shards returns the number of worker shards.
func (s *Server) Shards() int { return len(s.shards) }

// shardFor places a tenant: FNV-1a of the name modulo the shard count, the
// same stable hash the stream package derives tenant seed lanes from.
func (s *Server) shardFor(tenant string) *shard {
	return s.shards[int(stream.Hash64(tenant)%uint64(len(s.shards)))]
}

// admit takes one tenant slot, false when the fleet is full.
func (s *Server) admit() bool {
	select {
	case s.admitted <- struct{}{}:
		return true
	default:
		return false
	}
}

// unadmit releases a tenant slot (registration failed after admission).
func (s *Server) unadmit() { <-s.admitted }

// Close drains the server: new HTTP requests are rejected 503, every shard
// finishes its queue, snapshots all tenants to its store, and exits. The
// context bounds the wait. Idempotent; later calls return the first result.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		close(s.draining)
		for _, sh := range s.shards {
			close(sh.stop)
		}
		for _, sh := range s.shards {
			select {
			case <-sh.done:
			case <-ctx.Done():
				s.closeErr = fmt.Errorf("service: shutdown interrupted: %w", context.Cause(ctx))
				return
			}
			if sh.closeErr != nil && s.closeErr == nil {
				s.closeErr = sh.closeErr
			}
		}
	})
	return s.closeErr
}

// watchdogContext applies the resilience fit watchdog to ctx.
func watchdogContext(ctx context.Context, res control.Resilience) (context.Context, context.CancelFunc) {
	if res.FitWatchdog > 0 {
		return context.WithTimeout(ctx, res.FitWatchdog)
	}
	return ctx, func() {}
}
