package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"leo/internal/apps"
	"leo/internal/core"
	"leo/internal/platform"
	"leo/internal/profile"
)

// fixture is the shared serving scenario: the small space, kmeans as the
// tenant application class, LEO priors fit leave-one-out — the same rig the
// controller tests run.
type fixture struct {
	space     platform.Space
	classes   []Class
	truePerf  []float64
	truePower []float64
	idle      float64
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	space := platform.Small()
	app := apps.MustByName("kmeans")
	db, err := profile.Collect(space, apps.Suite(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := db.AppIndex(app.Name)
	if err != nil {
		t.Fatal(err)
	}
	rest, _, _, err := db.LeaveOneOut(idx)
	if err != nil {
		t.Fatal(err)
	}
	// LeanResults matches the production serve configuration (leo-runtime
	// -serve): the service only reads Result.Estimate.
	perfPrior, err := core.NewPrior(rest.Perf, core.Options{LeanResults: true})
	if err != nil {
		t.Fatal(err)
	}
	powerPrior, err := core.NewPrior(rest.Power, core.Options{LeanResults: true})
	if err != nil {
		t.Fatal(err)
	}
	tiers, err := StandardLadder(space, perfPrior, powerPrior, rest.Perf, rest.Power)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		space:     space,
		classes:   []Class{{Name: "kmeans", Tiers: tiers, IdlePower: app.IdlePower}},
		truePerf:  app.PerfVector(space),
		truePower: app.PowerVector(space),
		idle:      app.IdlePower,
	}
}

func (f *fixture) config() Config {
	return Config{Space: f.space, Classes: f.classes, Shards: 2, QueueDepth: 64}
}

// startServer boots a server plus its HTTP front end and wires shutdown
// into test cleanup.
func startServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(context.Background()); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t testing.TB, url string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// register is the happy-path helper.
func register(t testing.TB, base, tenant, class string, idle float64) {
	t.Helper()
	code, body := postJSON(t, base+"/v1/register",
		map[string]any{"tenant": tenant, "class": class, "idle_power": idle})
	if code != http.StatusOK {
		t.Fatalf("register %s: %d %s", tenant, code, body["error"])
	}
}

// observeTruth posts one clean window probing the first k configurations.
func observeTruth(t testing.TB, base, tenant string, f *fixture, k int) {
	t.Helper()
	idx := make([]int, k)
	perf := make([]float64, k)
	power := make([]float64, k)
	for i := 0; i < k; i++ {
		idx[i], perf[i], power[i] = i, f.truePerf[i], f.truePower[i]
	}
	code, body := postJSON(t, base+"/v1/observe",
		map[string]any{"tenant": tenant, "obs_idx": idx, "perf": perf, "power": power})
	if code != http.StatusOK {
		t.Fatalf("observe %s: %d %s", tenant, code, body["error"])
	}
}

// TestServeLifecycle walks the README quick-start over real HTTP: register,
// observe a window, read estimates, get a plan.
func TestServeLifecycle(t *testing.T) {
	f := newFixture(t)
	_, ts := startServer(t, f.config())

	register(t, ts.URL, "alpha", "kmeans", f.idle)
	observeTruth(t, ts.URL, "alpha", f, 12)

	code, est := getJSON(t, ts.URL+"/v1/estimate?tenant=alpha")
	if code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, est["error"])
	}
	var perf []float64
	if err := json.Unmarshal(est["perf"], &perf); err != nil {
		t.Fatal(err)
	}
	if len(perf) != f.space.N() {
		t.Fatalf("estimate length %d, want %d", len(perf), f.space.N())
	}

	code, plan := getJSON(t, ts.URL+"/v1/plan?tenant=alpha&work=100&deadline=10")
	if code != http.StatusOK {
		t.Fatalf("plan: %d %s", code, plan["error"])
	}
	var energy, rate float64
	if err := json.Unmarshal(plan["energy"], &energy); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(plan["rate"], &rate); err != nil {
		t.Fatal(err)
	}
	if energy <= 0 || rate != 10 {
		t.Fatalf("plan energy=%g rate=%g", energy, rate)
	}
}

// TestServeRejections pins every admission/backpressure status code the API
// documents.
func TestServeRejections(t *testing.T) {
	f := newFixture(t)
	cfg := f.config()
	cfg.MaxSessions = 2
	s, ts := startServer(t, cfg)

	// Unknown class: 400, and the reserved session slot is returned.
	code, _ := postJSON(t, ts.URL+"/v1/register", map[string]any{"tenant": "x", "class": "nope"})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown class: %d", code)
	}
	register(t, ts.URL, "a", "kmeans", 0)
	register(t, ts.URL, "b", "kmeans", 0)
	// Idempotent re-register holds no extra slot.
	register(t, ts.URL, "a", "kmeans", 0)
	// Third distinct tenant: admission control.
	code, _ = postJSON(t, ts.URL+"/v1/register", map[string]any{"tenant": "c", "class": "kmeans"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over capacity: %d, want 429", code)
	}
	// Class mismatch on an existing tenant: 409.
	code, _ = postJSON(t, ts.URL+"/v1/register", map[string]any{"tenant": "a", "class": "other"})
	if code != http.StatusBadRequest && code != http.StatusConflict {
		t.Fatalf("class mismatch: %d", code)
	}

	// Observe for an unregistered tenant: 404.
	code, _ = postJSON(t, ts.URL+"/v1/observe",
		map[string]any{"tenant": "ghost", "obs_idx": []int{0, 1, 2, 3}, "perf": []float64{1, 1, 1, 1}, "power": []float64{1, 1, 1, 1}})
	if code != http.StatusNotFound {
		t.Fatalf("ghost observe: %d, want 404", code)
	}
	// Too few valid probes: 422.
	code, body := postJSON(t, ts.URL+"/v1/observe",
		map[string]any{"tenant": "a", "obs_idx": []int{0, 1}, "perf": []float64{1, 2}, "power": []float64{3, 4}})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("thin window: %d %s, want 422", code, body["error"])
	}
	// Estimate before any window: 409.
	code, _ = getJSON(t, ts.URL+"/v1/estimate?tenant=a")
	if code != http.StatusConflict {
		t.Fatalf("no estimates: %d, want 409", code)
	}
	code, _ = getJSON(t, ts.URL+"/v1/plan?tenant=a&work=10&deadline=1")
	if code != http.StatusConflict {
		t.Fatalf("no-estimate plan: %d, want 409", code)
	}

	// Draining: everything is 503 after Close.
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, _ = postJSON(t, ts.URL+"/v1/register", map[string]any{"tenant": "z", "class": "kmeans"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining register: %d, want 503", code)
	}
	code, _ = getJSON(t, ts.URL+"/v1/estimate?tenant=a")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining estimate: %d, want 503", code)
	}
}

// TestShardPlacementIsStable pins the FNV routing: a tenant always lands on
// the same shard, and the population spreads across shards.
func TestShardPlacementIsStable(t *testing.T) {
	f := newFixture(t)
	cfg := f.config()
	cfg.Shards = 4
	s, _ := startServer(t, cfg)
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("tenant-%06d", i)
		first := s.shardFor(name)
		for j := 0; j < 3; j++ {
			if s.shardFor(name) != first {
				t.Fatalf("tenant %q moved shards", name)
			}
		}
		seen[first.id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("64 tenants hit %d of 4 shards", len(seen))
	}
}

// TestLoadSheddingServesDegradedRung drives a shard's wave processing
// directly (white box: no run loop is started, so this test owns the
// tenants) and asserts a shed window is served by the next rung down with
// the tenant's sticky rung and warm sessions untouched.
func TestLoadSheddingServesDegradedRung(t *testing.T) {
	f := newFixture(t)
	cfg := f.config().withDefaults()
	srv := &Server{
		cfg:      cfg,
		classes:  map[string]*Class{"kmeans": &f.classes[0]},
		draining: make(chan struct{}),
		admitted: make(chan struct{}, cfg.MaxSessions),
	}
	sh, err := newShard(srv, 0)
	if err != nil {
		t.Fatal(err)
	}
	reply := make(chan response, 1)
	sh.register(&request{op: opRegister, tenant: "a", class: "kmeans", reply: reply})
	if resp := <-reply; resp.err != nil {
		t.Fatal(resp.err)
	}

	idx := []int{0, 5, 9, 14, 20, 31, 40, 47, 55, 63, 80, 101, 115, 127}
	perf := make([]float64, len(idx))
	power := make([]float64, len(idx))
	for i, c := range idx {
		perf[i], power[i] = f.truePerf[c], f.truePower[c]
	}
	obs := &request{op: opObserve, tenant: "a", obsIdx: idx, perf: perf, power: power, reply: make(chan response, 1)}
	sh.process([]*request{obs}, true) // shed this tick
	resp := <-obs.reply
	if resp.err != nil {
		t.Fatal(resp.err)
	}
	if !resp.shed || resp.rung != "Online" {
		t.Fatalf("shed window served by rung %q (shed=%v), want Online via shedding", resp.rung, resp.shed)
	}
	ten := sh.tenants["a"]
	if ten.rung != 0 {
		t.Fatalf("shedding moved the sticky rung to %d", ten.rung)
	}
	if ten.perfEst == nil {
		t.Fatal("shed window published no estimates")
	}

	// The next unshed window runs on the tenant's own LEO rung.
	obs2 := &request{op: opObserve, tenant: "a", obsIdx: idx, perf: perf, power: power, reply: make(chan response, 1)}
	sh.process([]*request{obs2}, false)
	resp2 := <-obs2.reply
	if resp2.err != nil {
		t.Fatal(resp2.err)
	}
	if resp2.shed || resp2.rung != "LEO" {
		t.Fatalf("owned window served by %q (shed=%v), want LEO", resp2.rung, resp2.shed)
	}
}

// TestTrafficGeneratorDeterministic: the same config renders byte-identical
// schedules, registrations lead, and arrival times are sorted.
func TestTrafficGeneratorDeterministic(t *testing.T) {
	f := newFixture(t)
	cfg := TrafficConfig{
		Seed:    7,
		Tenants: 5,
		Classes: []TrafficClass{{Name: "kmeans", PerfTruth: f.truePerf, PowerTruth: f.truePower}},
		MeanRate: 2, Duration: 3, ProbesPerWindow: 8,
		DiurnalAmplitude: 0.5, DiurnalPeriod: 2, Noise: 0.01,
	}
	a, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedule lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			t.Fatalf("schedules diverge at event %d", i)
		}
	}
	registers := 0
	for i, ev := range a {
		if i > 0 && ev.At < a[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
		if ev.Kind == EvRegister {
			registers++
			if ev.At != 0 {
				t.Fatalf("registration at t=%g, want 0", ev.At)
			}
		}
	}
	if registers != cfg.Tenants {
		t.Fatalf("%d registrations for %d tenants", registers, cfg.Tenants)
	}
}
