package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"leo/internal/baseline"
	"leo/internal/control"
	"leo/internal/core"
	"leo/internal/pareto"
	"leo/internal/persist"
)

// Typed request outcomes the HTTP layer maps to status codes.
var (
	ErrUnknownTenant = errors.New("service: unknown tenant")
	ErrUnknownClass  = errors.New("service: unknown application class")
	ErrClassMismatch = errors.New("service: tenant already registered under a different class")
	ErrNoEstimates   = errors.New("service: tenant has no estimates yet")
	ErrTooFewSamples = errors.New("service: too few valid probes in window")
	ErrMaxSessions   = errors.New("service: session capacity reached")
	ErrDraining      = errors.New("service: server is draining")
)

type opKind int

const (
	opRegister opKind = iota
	opObserve
	opEstimate
	opPlan
)

// request is one tenant call traveling from the HTTP layer into a shard.
// The reply channel is buffered (capacity 1) so the shard never blocks on a
// caller that gave up.
type request struct {
	// ctx is the caller's lifetime: dispatch stops waiting for the reply once
	// it is done (the shard still processes the request and drops the reply
	// into the buffered channel). nil means wait unconditionally.
	ctx    context.Context
	op     opKind
	tenant string

	class     string  // register
	idlePower float64 // register

	obsIdx []int     // observe
	perf   []float64 // observe
	power  []float64 // observe

	work     float64 // plan
	deadline float64 // plan

	reply chan response
}

type response struct {
	err error

	windows int    // observe: total windows folded into this tenant
	dropped int    // observe: probes discarded by the validity filter
	rung    string // observe/estimate: tier that served the request
	shed    bool   // observe: window was served by the load-shedding rung

	perfEst, powerEst []float64    // estimate
	idlePower         float64      // estimate
	plan              *pareto.Plan // plan
}

// tenant is one application instance's serving state, owned exclusively by
// its shard goroutine.
type tenant struct {
	name      string
	class     *Class
	idlePower float64

	rung                int // sticky index into class.Tiers
	perfSess, powerSess baseline.Session

	perfEst, powerEst []float64 // sanitized copies; nil until the first window
	windows           int
	estFails          int // consecutive failures at the current rung
}

// shard is one single-writer worker: a goroutine that owns a disjoint set
// of tenants, a bounded request queue in front of it, and (optionally) its
// own persist.Store. All tenant state on this struct is touched only by
// run(), which is what makes the sessions lock-free.
type shard struct {
	srv *Server
	id  int

	queue chan *request
	stop  chan struct{} // closed by Server.Close
	done  chan struct{} // closed when run() has snapshotted and exited

	tenants  map[string]*tenant
	store    *persist.Store
	met      shardMetrics
	closeErr error
}

func newShard(srv *Server, id int) (*shard, error) {
	sh := &shard{
		srv:     srv,
		id:      id,
		queue:   make(chan *request, srv.cfg.QueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		tenants: make(map[string]*tenant),
		met:     newShardMetrics(id),
	}
	if srv.cfg.StateDir != "" {
		store, err := persist.OpenShard(srv.cfg.StateDir, id)
		if err != nil {
			return nil, fmt.Errorf("service: shard %d: %w", id, err)
		}
		sh.store = store
		if err := sh.recover(); err != nil {
			store.Close()
			return nil, fmt.Errorf("service: shard %d recovery: %w", id, err)
		}
	}
	return sh, nil
}

func (sh *shard) closeStore() {
	if sh.store != nil {
		sh.store.Close()
	}
}

// run is the shard's single-writer loop: block for one request (or stop),
// drain what else has queued up to BatchMax, and process the batch with
// same-Prior refits coalesced. On stop it finishes the queue, snapshots
// every tenant, and exits.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		var batch []*request
		select {
		case r := <-sh.queue:
			batch = append(batch, r)
		case <-sh.stop:
			sh.shutdown()
			return
		}
		sh.gather(&batch)
		depth := len(sh.queue)
		sh.met.queue.Set(float64(depth))
		mBatchSize.Observe(float64(len(batch)))
		// Load-shedding rung: when the queue is still three-quarters full
		// after taking a whole batch, this tick's refits run on the cheap
		// ladder so the shard catches up instead of collapsing.
		shed := depth >= sh.srv.cfg.QueueDepth*3/4
		sh.process(batch, shed)
	}
}

// gather fills the batch up to BatchMax. Event-driven (TickInterval 0) it
// takes only what has already queued; with a tick configured it waits out the
// remainder of one tick for more arrivals, coalescing refits at the cost of
// up to one tick of latency — the tradeoff the Retry-After hint is derived
// from. A stop during the wait cuts the tick short; the loop sees sh.stop on
// its next select and drains.
func (sh *shard) gather(batch *[]*request) {
	tick := sh.srv.cfg.TickInterval
	var timeout <-chan time.Time
	if tick > 0 {
		timer := time.NewTimer(tick)
		defer timer.Stop()
		timeout = timer.C
	}
	for len(*batch) < sh.srv.cfg.BatchMax {
		select {
		case r := <-sh.queue:
			*batch = append(*batch, r)
			continue
		default:
		}
		if timeout == nil {
			return
		}
		select {
		case r := <-sh.queue:
			*batch = append(*batch, r)
		case <-timeout:
			return
		case <-sh.stop:
			return
		}
	}
}

// shutdown drains every queued request (callers are already being rejected
// with 503 at the HTTP layer), then snapshots the shard's tenants.
func (sh *shard) shutdown() {
	for {
		select {
		case r := <-sh.queue:
			sh.process([]*request{r}, false)
		default:
			sh.closeErr = sh.snapshot()
			if sh.store != nil {
				if err := sh.store.Close(); err != nil && sh.closeErr == nil {
					sh.closeErr = err
				}
			}
			return
		}
	}
}

// process serves one gathered batch in phases: registrations first (so an
// observe behind its register in the same batch succeeds), then observes
// with same-Prior refits batched, then reads (estimate/plan) against the
// freshly updated state.
func (sh *shard) process(batch []*request, shed bool) {
	var observes, reads []*request
	for _, r := range batch {
		switch r.op {
		case opRegister:
			sh.register(r)
		case opObserve:
			observes = append(observes, r)
		default:
			reads = append(reads, r)
		}
	}
	sh.processObserves(observes, shed)
	for _, r := range reads {
		switch r.op {
		case opEstimate:
			sh.estimate(r)
		case opPlan:
			sh.plan(r)
		}
	}
}

func (sh *shard) register(r *request) {
	cl, ok := sh.srv.classes[r.class]
	if !ok {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrUnknownClass, r.class)}
		return
	}
	if t, exists := sh.tenants[r.tenant]; exists {
		if t.class != cl {
			r.reply <- response{err: fmt.Errorf("%w: %q is %q", ErrClassMismatch, r.tenant, t.class.Name)}
			return
		}
		// Idempotent re-register (a rebooted tenant announcing itself):
		// no new session slot is consumed.
		r.reply <- response{windows: t.windows, rung: t.class.Tiers[t.rung].Name}
		return
	}
	// Admission control: a genuinely new tenant takes one fleet-wide slot.
	if !sh.srv.admit() {
		mRejectedSessions.Inc()
		r.reply <- response{err: ErrMaxSessions}
		return
	}
	t := &tenant{name: r.tenant, class: cl, idlePower: r.idlePower, rung: 0}
	if t.idlePower <= 0 {
		t.idlePower = cl.IdlePower
	}
	if err := sh.openSessions(t); err != nil {
		sh.srv.unadmit()
		r.reply <- response{err: err}
		return
	}
	sh.tenants[r.tenant] = t
	mRegisters.Inc()
	mTenants.Add(1)
	sh.met.tenants.Set(float64(len(sh.tenants)))
	r.reply <- response{rung: cl.Tiers[0].Name}
}

// openSessions (re)creates t's per-metric sessions at its current rung.
func (sh *shard) openSessions(t *tenant) error {
	tier := t.class.Tiers[t.rung]
	perfSess, err := tier.Perf.NewSession(context.Background())
	if err != nil {
		return fmt.Errorf("service: opening %s performance session: %w", tier.Name, err)
	}
	powerSess, err := tier.Power.NewSession(context.Background())
	if err != nil {
		return fmt.Errorf("service: opening %s power session: %w", tier.Name, err)
	}
	t.perfSess, t.powerSess = perfSess, powerSess
	return nil
}

// staged is one observe window whose sessions support batched fitting,
// parked between Stage and FinishFit.
type staged struct {
	req    *request
	ten    *tenant
	w      control.Window
	bfPerf baseline.BatchFitter
	bfPow  baseline.BatchFitter

	perfEst, powerEst []float64
	err               error
}

// processObserves serves a batch's observation windows. Multiple windows
// from one tenant are processed in arrival-order waves (a session can hold
// only one window at a time); within a wave, every tenant whose sessions
// support it is staged and refit through one core.FitBatch pass per
// (class, rung) group — the refit scheduler the shard exists for.
func (sh *shard) processObserves(observes []*request, shed bool) {
	if len(observes) == 0 {
		return
	}
	byTenant := make(map[string][]*request)
	var order []string
	waves := 0
	for _, r := range observes {
		if _, seen := byTenant[r.tenant]; !seen {
			order = append(order, r.tenant)
		}
		byTenant[r.tenant] = append(byTenant[r.tenant], r)
		if n := len(byTenant[r.tenant]); n > waves {
			waves = n
		}
	}
	for k := 0; k < waves; k++ {
		var wave []*request
		for _, name := range order {
			if rs := byTenant[name]; k < len(rs) {
				wave = append(wave, rs[k])
			}
		}
		sh.processWave(wave, shed)
	}
}

func (sh *shard) processWave(wave []*request, shed bool) {
	var items []*staged
	for _, r := range wave {
		t, ok := sh.tenants[r.tenant]
		if !ok {
			r.reply <- response{err: fmt.Errorf("%w: %q", ErrUnknownTenant, r.tenant)}
			continue
		}
		w := control.FilterWindow(r.obsIdx, r.perf, r.power)
		if len(w.ObsIdx) < sh.srv.cfg.Resilience.MinValidSamples {
			r.reply <- response{
				err:     fmt.Errorf("%w: only %d of %d probes usable", ErrTooFewSamples, len(w.ObsIdx), len(r.obsIdx)),
				dropped: w.Dropped,
			}
			continue
		}
		if shed {
			if rung, ok := sh.shedRung(t); ok {
				sh.fitShed(r, t, w, rung)
				continue
			}
		}
		bfPerf, okP := t.perfSess.(baseline.BatchFitter)
		bfPow, okQ := t.powerSess.(baseline.BatchFitter)
		if okP && okQ {
			it := &staged{req: r, ten: t, w: w, bfPerf: bfPerf, bfPow: bfPow}
			// Mirror control.FitWindow exactly: previous window out, new
			// window staged; the fit itself is deferred to the group pass.
			t.perfSess.DropObservations()
			t.powerSess.DropObservations()
			if err := bfPerf.Stage(w.ObsIdx, w.Perf); err != nil {
				it.err = fmt.Errorf("service: performance estimation: %w", err)
			} else if err := bfPow.Stage(w.ObsIdx, w.Power); err != nil {
				it.err = fmt.Errorf("service: power estimation: %w", err)
			}
			items = append(items, it)
			continue
		}
		// Sessions without batch support (the adapted baselines) fit inline
		// through the same shared code path the controller walks.
		perfEst, powerEst, err := control.FitWindow(context.Background(), t.perfSess, t.powerSess, w, sh.srv.cfg.Resilience)
		sh.finishWindow(r, t, w, perfEst, powerEst, err, t.rung, false)
	}
	sh.fitStaged(items)
	for _, it := range items {
		sh.finishWindow(it.req, it.ten, it.w, it.perfEst, it.powerEst, it.err, it.ten.rung, false)
	}
}

// shedRung picks the degraded rung a shed window runs on: one rung below
// the primary, never above the tenant's own sticky rung. False when the
// tenant is already at the ladder's bottom — nothing cheaper exists.
func (sh *shard) shedRung(t *tenant) (int, bool) {
	rung := t.rung + 1
	if rung >= len(t.class.Tiers) {
		return 0, false
	}
	return rung, true
}

// fitShed serves one window on the load-shedding rung with ephemeral
// sessions: the adapted baselines refit from scratch each window anyway, so
// a throwaway session is indistinguishable from a persistent one, and the
// tenant's own (expensive, warm) sessions are left untouched — its sticky
// rung does not change because the *server* fell behind.
func (sh *shard) fitShed(r *request, t *tenant, w control.Window, rung int) {
	tier := t.class.Tiers[rung]
	perfSess, err := tier.Perf.NewSession(context.Background())
	if err == nil {
		var powerSess baseline.Session
		powerSess, err = tier.Power.NewSession(context.Background())
		if err == nil {
			var perfEst, powerEst []float64
			perfEst, powerEst, err = control.FitWindow(context.Background(), perfSess, powerSess, w, sh.srv.cfg.Resilience)
			mShedWindows.Inc()
			sh.finishWindow(r, t, w, perfEst, powerEst, err, rung, true)
			return
		}
	}
	sh.finishWindow(r, t, w, nil, nil, err, rung, true)
}

// fitStaged runs the coalesced refits: staged items grouped by
// (class, rung) — every group's core sessions share one immutable Prior by
// construction — one core.FitBatch pass per metric per group, under the
// same FitWatchdog deadline a serial fit gets. Power sessions are fitted
// only for tenants whose performance fit succeeded, exactly as the serial
// FitWindow path short-circuits, so batched state evolution is
// indistinguishable from serial.
func (sh *shard) fitStaged(items []*staged) {
	type groupKey struct {
		cl   *Class
		rung int
	}
	groups := make(map[groupKey][]*staged)
	var keys []groupKey
	for _, it := range items {
		if it.err != nil {
			continue // staging already failed
		}
		k := groupKey{it.ten.class, it.ten.rung}
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], it)
	}
	for _, k := range keys {
		g := groups[k]
		ctx, cancel := watchdogContext(context.Background(), sh.srv.cfg.Resilience)

		perfSessions := make([]*core.Session, len(g))
		for i, it := range g {
			perfSessions[i] = it.bfPerf.CoreSession()
		}
		perfOut, batchErr := core.FitBatch(ctx, perfSessions)
		var survivors []*staged
		for i, it := range g {
			var res *core.Result
			var err error
			if i < len(perfOut) {
				res, err = perfOut[i].Result, perfOut[i].Err
			} else {
				err = batchErr // canceled before this session's turn
			}
			it.perfEst, err = it.bfPerf.FinishFit(res, err)
			if err != nil {
				it.err = fmt.Errorf("service: performance estimation: %w", err)
				continue
			}
			survivors = append(survivors, it)
		}

		powerSessions := make([]*core.Session, len(survivors))
		for i, it := range survivors {
			powerSessions[i] = it.bfPow.CoreSession()
		}
		powerOut, batchErr := core.FitBatch(ctx, powerSessions)
		for i, it := range survivors {
			var res *core.Result
			var err error
			if i < len(powerOut) {
				res, err = powerOut[i].Result, powerOut[i].Err
			} else {
				err = batchErr
			}
			it.powerEst, err = it.bfPow.FinishFit(res, err)
			if err != nil {
				it.err = fmt.Errorf("service: power estimation: %w", err)
				continue
			}
			// Jitter budgets, in FitWindow's order: performance first.
			if jerr := control.CheckJitter(it.ten.perfSess, "performance", sh.srv.cfg.Resilience.JitterBudget); jerr != nil {
				it.err = jerr
			} else if jerr := control.CheckJitter(it.ten.powerSess, "power", sh.srv.cfg.Resilience.JitterBudget); jerr != nil {
				it.err = jerr
			}
		}
		cancel()
	}
}

// finishWindow is the tail of the shared calibrate-window path for one
// tenant window: validate, journal the accepted window before its estimates
// take effect, sanitize, publish. Failures feed the tenant's
// retry-then-degrade ladder — except on shed windows, where the failure is
// the server's choice of rung, not the tenant's estimator.
func (sh *shard) finishWindow(r *request, t *tenant, w control.Window, perfEst, powerEst []float64, err error, rung int, shed bool) {
	cfg := &sh.srv.cfg
	if err == nil {
		err = control.ValidateEstimates(perfEst, powerEst, cfg.Space.N())
		if err != nil {
			err = fmt.Errorf("service: %s estimates rejected: %w", t.class.Tiers[rung].Name, err)
		}
	}
	if err != nil {
		mEstimationFailures.Inc()
		if !shed {
			t.estFails++
			if t.estFails >= cfg.Resilience.MaxEstimationFailures && t.rung+1 < len(t.class.Tiers) {
				t.rung++
				t.estFails = 0
				mDegrades.Inc()
				if serr := sh.openSessions(t); serr != nil {
					err = errors.Join(err, serr)
				}
			}
		}
		r.reply <- response{err: err, dropped: w.Dropped, rung: t.class.Tiers[rung].Name, shed: shed}
		return
	}
	if sh.store != nil {
		rec := &persist.WindowRecord{
			Seq:    sh.store.LastSeq() + 1,
			Rung:   rung,
			ObsIdx: w.ObsIdx,
			Perf:   w.Perf,
			Power:  w.Power,
			Tenant: packTenantMeta(t, shed),
		}
		if jerr := sh.store.Append(rec); jerr != nil {
			r.reply <- response{err: fmt.Errorf("service: journaling window: %w", jerr), dropped: w.Dropped}
			return
		}
	}
	perf, power := control.SanitizeEstimates(perfEst, powerEst)
	// Own the published vectors: session Update may reuse its buffers on the
	// next fit, and replies must stay stable after the shard moves on.
	t.perfEst = append(t.perfEst[:0], perf...)
	t.powerEst = append(t.powerEst[:0], power...)
	t.windows++
	t.estFails = 0
	mWindows.Inc()
	r.reply <- response{windows: t.windows, dropped: w.Dropped, rung: t.class.Tiers[rung].Name, shed: shed}
}

func (sh *shard) estimate(r *request) {
	t, ok := sh.tenants[r.tenant]
	if !ok {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrUnknownTenant, r.tenant)}
		return
	}
	if t.perfEst == nil {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrNoEstimates, r.tenant)}
		return
	}
	r.reply <- response{
		perfEst:   append([]float64(nil), t.perfEst...),
		powerEst:  append([]float64(nil), t.powerEst...),
		idlePower: t.idlePower,
		rung:      t.class.Tiers[t.rung].Name,
		windows:   t.windows,
	}
}

// plan mirrors Controller.PlanContext's estimate-backed path float for
// float: minimize energy over the sanitized estimates; if they call the
// demand infeasible, fall back to the believed-fastest configuration run
// flat out.
func (sh *shard) plan(r *request) {
	t, ok := sh.tenants[r.tenant]
	if !ok {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrUnknownTenant, r.tenant)}
		return
	}
	if t.perfEst == nil {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrNoEstimates, r.tenant)}
		return
	}
	plan, err := pareto.MinimizeEnergy(t.perfEst, t.powerEst, t.idlePower, r.work, r.deadline)
	if err != nil {
		best := believedFastest(t.perfEst)
		if best < 0 {
			r.reply <- response{err: err}
			return
		}
		plan = &pareto.Plan{
			Allocations: []pareto.Allocation{{Index: best, Time: r.deadline}},
			Rate:        r.work / r.deadline,
			Energy:      t.powerEst[best] * r.deadline,
		}
	}
	r.reply <- response{plan: plan, rung: t.class.Tiers[t.rung].Name}
}

// believedFastest is the controller's infeasible-demand fallback with no
// abandoned configurations: the highest finite estimated rate, -1 when
// every estimate is zero or worse.
func believedFastest(perfEst []float64) int {
	best, bestIdx := 0.0, -1
	for i, v := range perfEst {
		if v > best && !math.IsInf(v, 1) {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// --- persistence -----------------------------------------------------------

// metaSep separates tenant metadata fields inside journal records and
// snapshot entry names. 0x1f (ASCII unit separator) cannot appear in tenant
// or class names the HTTP layer accepts.
const metaSep = "\x1f"

// packTenantMeta tags a journal record with everything replay needs to
// reconstruct the tenant it belongs to: name, class, idle power (exact,
// hex-packed bits), the tenant's own sticky rung, and a shed marker when
// the window ran on the load-shedding rung instead.
func packTenantMeta(t *tenant, shed bool) string {
	meta := t.name + metaSep + t.class.Name + metaSep +
		strconv.FormatUint(math.Float64bits(t.idlePower), 16) + metaSep +
		strconv.Itoa(t.rung)
	if shed {
		meta += metaSep + "s"
	}
	return meta
}

type tenantMeta struct {
	name      string
	class     string
	idlePower float64
	rung      int
	shed      bool
}

func unpackTenantMeta(s string) (tenantMeta, error) {
	parts := strings.Split(s, metaSep)
	if len(parts) < 4 || len(parts) > 5 {
		return tenantMeta{}, fmt.Errorf("service: malformed tenant metadata %q", s)
	}
	bits, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return tenantMeta{}, fmt.Errorf("service: malformed idle power in %q: %w", s, err)
	}
	rung, err := strconv.Atoi(parts[3])
	if err != nil || rung < 0 {
		return tenantMeta{}, fmt.Errorf("service: malformed rung in %q", s)
	}
	m := tenantMeta{name: parts[0], class: parts[1], idlePower: math.Float64frombits(bits), rung: rung}
	if len(parts) == 5 {
		if parts[4] != "s" {
			return tenantMeta{}, fmt.Errorf("service: malformed shed marker in %q", s)
		}
		m.shed = true
	}
	return m, nil
}

// snapshot persists every tenant's sessions into the shard's store, two
// entries per tenant (perf, power) named by the packed metadata so restore
// can rebuild the tenant without a registry, plus — for tenants that have
// estimates — an "est" entry carrying the published estimate vectors in a
// core.SessionState shell (Mu: perf, ObsVal: power, Sigma2: window count),
// so a gracefully restarted server serves plans immediately instead of
// answering 409 until the next observe. Deterministic order (sorted tenant
// names) so identical state writes identical snapshots.
func (sh *shard) snapshot() error {
	if sh.store == nil {
		return nil
	}
	names := make([]string, 0, len(sh.tenants))
	for name := range sh.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := &persist.Snapshot{Seq: sh.store.LastSeq()}
	for _, name := range names {
		t := sh.tenants[name]
		meta := packTenantMeta(t, false)
		for _, m := range []struct {
			metric string
			sess   baseline.Session
		}{{"perf", t.perfSess}, {"power", t.powerSess}} {
			entry := persist.SessionEntry{Name: meta + metaSep + m.metric, State: &core.SessionState{}}
			if sc, ok := m.sess.(baseline.StateCarrier); ok {
				entry.Digest = sc.StateDigest()
				entry.State = sc.SessionState()
			}
			snap.Sessions = append(snap.Sessions, entry)
		}
		if t.perfEst != nil {
			snap.Sessions = append(snap.Sessions, persist.SessionEntry{
				Name: meta + metaSep + "est",
				State: &core.SessionState{
					Mu:     append([]float64(nil), t.perfEst...),
					ObsVal: append([]float64(nil), t.powerEst...),
					Sigma2: float64(t.windows),
				},
			})
		}
	}
	return sh.store.WriteSnapshot(snap)
}

// recover rebuilds the shard's tenants from its store: snapshot first
// (sessions restored warm when their prior digest still matches), then the
// journaled windows after it, replayed through the same serial code path a
// live batch reduces to — so the recovered estimates are bit-identical to
// the pre-crash ones for every journaled window.
func (sh *shard) recover() error {
	snap, err := sh.store.LoadSnapshot()
	if err != nil {
		return err
	}
	if snap != nil {
		for _, se := range snap.Sessions {
			// Entry names are the packed tenant metadata plus a metric
			// suffix: name/class/idle/rung/("perf"|"power").
			i := strings.LastIndex(se.Name, metaSep)
			if i < 0 {
				return fmt.Errorf("service: malformed snapshot entry %q", se.Name)
			}
			metric := se.Name[i+1:]
			if metric != "perf" && metric != "power" && metric != "est" {
				return fmt.Errorf("service: snapshot entry %q: unknown metric", se.Name)
			}
			meta, err := unpackTenantMeta(se.Name[:i])
			if err != nil {
				return err
			}
			t, err := sh.restoreTenant(meta)
			if err != nil {
				return err
			}
			if t == nil {
				continue // capacity exceeded: tenant dropped
			}
			if metric == "est" {
				if se.State != nil && len(se.State.Mu) > 0 {
					t.perfEst = append([]float64(nil), se.State.Mu...)
					t.powerEst = append([]float64(nil), se.State.ObsVal...)
					t.windows = int(se.State.Sigma2)
				}
				continue
			}
			sess := t.perfSess
			if metric == "power" {
				sess = t.powerSess
			}
			sc, ok := sess.(baseline.StateCarrier)
			if ok && se.Digest != 0 && se.Digest == sc.StateDigest() && se.State != nil {
				if err := sc.RestoreSessionState(se.State); err != nil {
					return fmt.Errorf("service: restoring %q: %w", se.Name, err)
				}
			}
		}
	}
	var afterSeq uint64
	if snap != nil {
		afterSeq = snap.Seq
	}
	recs, err := sh.store.Replay(afterSeq)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.Tenant == "" {
			continue // not a service record
		}
		if err := sh.applyRecord(rec); err != nil {
			return err
		}
	}
	sh.met.tenants.Set(float64(len(sh.tenants)))
	return nil
}

// restoreTenant finds or creates the tenant a snapshot entry or journal
// record describes, moving it to the recorded sticky rung (fresh sessions
// on a rung change, exactly as a live degrade opens fresh ones). nil when
// the fleet-wide session cap is already spent.
func (sh *shard) restoreTenant(meta tenantMeta) (*tenant, error) {
	cl, ok := sh.srv.classes[meta.class]
	if !ok {
		return nil, fmt.Errorf("service: recovered tenant %q names unknown class %q", meta.name, meta.class)
	}
	if meta.rung >= len(cl.Tiers) {
		return nil, fmt.Errorf("service: recovered tenant %q rung %d beyond ladder", meta.name, meta.rung)
	}
	if t, exists := sh.tenants[meta.name]; exists {
		if t.rung != meta.rung {
			t.rung = meta.rung
			t.estFails = 0
			if err := sh.openSessions(t); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	if !sh.srv.admit() {
		return nil, nil
	}
	t := &tenant{name: meta.name, class: cl, idlePower: meta.idlePower, rung: meta.rung}
	if t.idlePower <= 0 {
		t.idlePower = cl.IdlePower
	}
	if err := sh.openSessions(t); err != nil {
		sh.srv.unadmit()
		return nil, err
	}
	sh.tenants[meta.name] = t
	mTenants.Add(1)
	mRestoredTenants.Inc()
	return t, nil
}

// applyRecord replays one journaled window. Shed windows replay on
// ephemeral sessions at the recorded rung, exactly as they ran live; owned
// windows walk FitWindow — which a batched live fit is bit-identical to —
// so the tenant's sessions and estimates land where the crash left them.
func (sh *shard) applyRecord(rec *persist.WindowRecord) error {
	meta, err := unpackTenantMeta(rec.Tenant)
	if err != nil {
		return err
	}
	t, err := sh.restoreTenant(meta)
	if err != nil {
		return err
	}
	if t == nil {
		return nil // capacity exceeded: tenant dropped
	}
	w := control.Window{ObsIdx: rec.ObsIdx, Perf: rec.Perf, Power: rec.Power}
	var perfEst, powerEst []float64
	if meta.shed {
		if rec.Rung < 0 || rec.Rung >= len(t.class.Tiers) {
			return fmt.Errorf("service: journaled shed rung %d beyond ladder", rec.Rung)
		}
		tier := t.class.Tiers[rec.Rung]
		perfSess, serr := tier.Perf.NewSession(context.Background())
		if serr != nil {
			return serr
		}
		powerSess, serr := tier.Power.NewSession(context.Background())
		if serr != nil {
			return serr
		}
		perfEst, powerEst, err = control.FitWindow(context.Background(), perfSess, powerSess, w, sh.srv.cfg.Resilience)
	} else {
		perfEst, powerEst, err = control.FitWindow(context.Background(), t.perfSess, t.powerSess, w, sh.srv.cfg.Resilience)
	}
	if err == nil {
		err = control.ValidateEstimates(perfEst, powerEst, sh.srv.cfg.Space.N())
	}
	if err != nil {
		// A journaled window was accepted live; a failed replay means the
		// environment changed (e.g. different ladder). Surface it rather
		// than silently recovering different state.
		return fmt.Errorf("service: replaying window %d for %q: %w", rec.Seq, meta.name, err)
	}
	perf, power := control.SanitizeEstimates(perfEst, powerEst)
	t.perfEst = append(t.perfEst[:0], perf...)
	t.powerEst = append(t.powerEst[:0], power...)
	t.windows++
	return nil
}
