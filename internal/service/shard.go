package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"leo/internal/baseline"
	"leo/internal/control"
	"leo/internal/core"
	"leo/internal/pareto"
	"leo/internal/persist"
)

// Typed request outcomes the HTTP layer maps to status codes.
var (
	ErrUnknownTenant  = errors.New("service: unknown tenant")
	ErrUnknownClass   = errors.New("service: unknown application class")
	ErrClassMismatch  = errors.New("service: tenant already registered under a different class")
	ErrNoEstimates    = errors.New("service: tenant has no estimates yet")
	ErrTooFewSamples  = errors.New("service: too few valid probes in window")
	ErrMaxSessions    = errors.New("service: session capacity reached")
	ErrDraining       = errors.New("service: server is draining")
	ErrNoFeasiblePlan = errors.New("service: no feasible plan")
)

type opKind int

const (
	opRegister opKind = iota
	opObserve
	opEstimate
	opPlan
)

// request is one tenant call traveling from the HTTP layer into a shard.
// The reply channel is buffered (capacity 1) so the shard never blocks on a
// caller that gave up.
type request struct {
	// ctx is the caller's lifetime: dispatch stops waiting for the reply once
	// it is done (the shard still processes the request and drops the reply
	// into the buffered channel). nil means wait unconditionally.
	ctx    context.Context
	op     opKind
	tenant string

	class     string  // register
	idlePower float64 // register

	obsIdx []int     // observe
	perf   []float64 // observe
	power  []float64 // observe

	work     float64 // plan
	deadline float64 // plan
	powerCap float64 // plan, capped mode
	capped   bool    // plan: maximize work under powerCap instead

	reply chan response
}

type response struct {
	err error

	windows int    // observe: total windows folded into this tenant
	dropped int    // observe: probes discarded by the validity filter
	rung    string // observe/estimate: tier that served the request
	shed    bool   // observe: window was served by the load-shedding rung

	perfEst, powerEst []float64    // estimate
	idlePower         float64      // estimate
	plan              *pareto.Plan // plan: fallback when planJSON could not render
	planJSON          []byte       // plan: complete pre-encoded reply body
	gen               uint64       // plan: tenant estimates generation
}

// tenant is one application instance's serving state, owned exclusively by
// its shard goroutine.
type tenant struct {
	name      string
	class     *Class
	idlePower float64

	rung                int // sticky index into class.Tiers
	perfSess, powerSess baseline.Session

	perfEst, powerEst []float64 // sanitized copies; nil until the first window
	windows           int
	fitWindows        int  // windows absorbed by the tenant's own sessions (shed ones excluded)
	estFails          int  // consecutive failures at the current rung
	seeded            bool // sessions warm-started from a class seed; cleared when they reopen cold

	// Plan memoization: the Pareto frontier over (perfEst, powerEst) and the
	// fully encoded reply for every (demand, deadline) already served, both
	// valid for exactly one estimates generation.
	estGen    uint64
	planner   *pareto.Planner
	planCache map[planKey][]byte
}

// planKey identifies one memoized plan reply: the exact float bits of the
// demand pair, plus which planning mode produced it.
type planKey struct {
	capped bool
	d1, d2 uint64 // Float64bits of work (or power cap) and deadline
}

// planCacheMax bounds a tenant's memoized replies. Real tenants cycle
// through a handful of quantized demand levels; a tenant that exceeds this
// is churning unique demands, so the whole cache is dropped at once rather
// than tracking recency per entry.
const planCacheMax = 1024

// invalidatePlans advances the tenant's estimates generation, discarding
// the cached frontier and every memoized plan reply. Called wherever the
// published estimates, the tier name, or the session provenance behind them
// change: estimate publishes, degrades, restores, rung changes.
func (t *tenant) invalidatePlans() {
	t.estGen++
	t.planner = nil
	clear(t.planCache)
}

// shard is one single-writer worker: a goroutine that owns a disjoint set
// of tenants, a bounded request queue in front of it, and (optionally) its
// own persist.Store. All tenant state on this struct is touched only by
// run(), which is what makes the sessions lock-free.
type shard struct {
	srv *Server
	id  int

	queue chan *request
	stop  chan struct{} // closed by Server.Close
	done  chan struct{} // closed when run() has snapshotted and exited

	tenants map[string]*tenant
	// seeds hold one captured posterior per class — the REOH-style transfer
	// source that turns a new tenant's first fit from cold (~full EM) into
	// warm (~one refit). First capture wins; see captureSeed.
	seeds    map[string]*classSeed
	store    *persist.Store
	met      shardMetrics
	closeErr error

	planScratch pareto.Plan // reused by plan() on cache misses
}

// classSeed is a donated rung-0 posterior for one application class, held
// with the prior digests that gate its application to a recipient. When the
// donor could export them, the seed also carries the shared frozen-refit
// operator caches, so every transferred tenant's first warm refit skips the
// O(n³) operator rebuild; seeds reloaded from a snapshot carry none and
// recipients rebuild on demand — bit-identical either way.
type classSeed struct {
	perf, power             *core.SessionState
	perfDigest, powerDigest uint64
	perfOps, powerOps       *core.FrozenOps
}

func newShard(srv *Server, id int) (*shard, error) {
	sh := &shard{
		srv:     srv,
		id:      id,
		queue:   make(chan *request, srv.cfg.QueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		tenants: make(map[string]*tenant),
		seeds:   make(map[string]*classSeed),
		met:     newShardMetrics(id),
	}
	if srv.cfg.StateDir != "" {
		store, err := persist.OpenShard(srv.cfg.StateDir, id)
		if err != nil {
			return nil, fmt.Errorf("service: shard %d: %w", id, err)
		}
		sh.store = store
		if err := sh.recover(); err != nil {
			store.Close()
			return nil, fmt.Errorf("service: shard %d recovery: %w", id, err)
		}
	}
	return sh, nil
}

func (sh *shard) closeStore() {
	if sh.store != nil {
		sh.store.Close()
	}
}

// run is the shard's single-writer loop: block for one request (or stop),
// drain what else has queued up to BatchMax, and process the batch with
// same-Prior refits coalesced. On stop it finishes the queue, snapshots
// every tenant, and exits.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		var batch []*request
		select {
		case r := <-sh.queue:
			batch = append(batch, r)
		case <-sh.stop:
			sh.shutdown()
			return
		}
		sh.gather(&batch)
		depth := len(sh.queue)
		sh.met.queue.Set(float64(depth))
		mBatchSize.Observe(float64(len(batch)))
		// Load-shedding rung: when the queue is still three-quarters full
		// after taking a whole batch, this tick's refits run on the cheap
		// ladder so the shard catches up instead of collapsing.
		shed := depth >= sh.srv.cfg.QueueDepth*3/4
		sh.process(batch, shed)
	}
}

// gather fills the batch up to BatchMax. Event-driven (TickInterval 0) it
// takes only what has already queued; with a tick configured it waits out the
// remainder of one tick for more arrivals, coalescing refits at the cost of
// up to one tick of latency — the tradeoff the Retry-After hint is derived
// from. A stop during the wait cuts the tick short; the loop sees sh.stop on
// its next select and drains.
func (sh *shard) gather(batch *[]*request) {
	tick := sh.srv.cfg.TickInterval
	var timeout <-chan time.Time
	if tick > 0 {
		timer := time.NewTimer(tick)
		defer timer.Stop()
		timeout = timer.C
	}
	for len(*batch) < sh.srv.cfg.BatchMax {
		select {
		case r := <-sh.queue:
			*batch = append(*batch, r)
			continue
		default:
		}
		if timeout == nil {
			return
		}
		select {
		case r := <-sh.queue:
			*batch = append(*batch, r)
		case <-timeout:
			return
		case <-sh.stop:
			return
		}
	}
}

// shutdown drains every queued request (callers are already being rejected
// with 503 at the HTTP layer), then snapshots the shard's tenants.
func (sh *shard) shutdown() {
	for {
		select {
		case r := <-sh.queue:
			sh.process([]*request{r}, false)
		default:
			sh.closeErr = sh.snapshot()
			if sh.store != nil {
				if err := sh.store.Close(); err != nil && sh.closeErr == nil {
					sh.closeErr = err
				}
			}
			// The shard is done mutating: hand every tenant's sessions back
			// to their estimators' free lists so a successor server over the
			// same priors (restart, tests) admits without reallocating.
			for _, t := range sh.tenants {
				if t.perfSess != nil {
					baseline.ReleaseSession(t.perfSess)
				}
				if t.powerSess != nil {
					baseline.ReleaseSession(t.powerSess)
				}
				t.perfSess, t.powerSess = nil, nil
			}
			return
		}
	}
}

// process serves one gathered batch in phases: registrations first (so an
// observe behind its register in the same batch succeeds), then observes
// with same-Prior refits batched, then reads (estimate/plan) against the
// freshly updated state.
func (sh *shard) process(batch []*request, shed bool) {
	var observes, reads []*request
	for _, r := range batch {
		switch r.op {
		case opRegister:
			sh.register(r)
		case opObserve:
			observes = append(observes, r)
		default:
			reads = append(reads, r)
		}
	}
	sh.processObserves(observes, shed)
	for _, r := range reads {
		switch r.op {
		case opEstimate:
			sh.estimate(r)
		case opPlan:
			sh.plan(r)
		}
	}
}

func (sh *shard) register(r *request) {
	cl, ok := sh.srv.classes[r.class]
	if !ok {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrUnknownClass, r.class)}
		return
	}
	if t, exists := sh.tenants[r.tenant]; exists {
		if t.class != cl {
			r.reply <- response{err: fmt.Errorf("%w: %q is %q", ErrClassMismatch, r.tenant, t.class.Name)}
			return
		}
		// Idempotent re-register (a rebooted tenant announcing itself):
		// no new session slot is consumed.
		r.reply <- response{windows: t.windows, rung: t.class.Tiers[t.rung].Name}
		return
	}
	// Admission control: a genuinely new tenant takes one fleet-wide slot.
	if !sh.srv.admit() {
		mRejectedSessions.Inc()
		r.reply <- response{err: ErrMaxSessions}
		return
	}
	t := &tenant{name: r.tenant, class: cl, idlePower: r.idlePower, rung: 0}
	if t.idlePower <= 0 {
		t.idlePower = cl.IdlePower
	}
	if err := sh.openSessions(t); err != nil {
		sh.srv.unadmit()
		r.reply <- response{err: err}
		return
	}
	// Cold-start transfer: when an earlier tenant of this class has donated
	// its first fitted posterior, admission buys a warm session, and the new
	// tenant's first window costs a refit instead of a full cold fit.
	if seed := sh.seeds[cl.Name]; seed != nil {
		applied, err := sh.applySeed(t, seed)
		if err != nil {
			sh.srv.unadmit()
			r.reply <- response{err: err}
			return
		}
		if applied {
			mSeedTransfers.Inc()
		}
	}
	sh.tenants[r.tenant] = t
	mRegisters.Inc()
	mTenants.Add(1)
	sh.met.tenants.Set(float64(len(sh.tenants)))
	r.reply <- response{rung: cl.Tiers[0].Name}
}

// captureSeed donates t's just-fitted rung-0 posterior as its class's
// cold-start seed. First capture wins, in journal-sequence order, so a live
// run and its replay capture the identical seed; sessions that cannot carry
// state are skipped and the next capturable tenant donates instead.
func (sh *shard) captureSeed(t *tenant) {
	pc, okP := t.perfSess.(baseline.StateCarrier)
	qc, okQ := t.powerSess.(baseline.StateCarrier)
	if !okP || !okQ {
		return
	}
	seed := &classSeed{
		perf:        pc.SessionState(),
		power:       qc.SessionState(),
		perfDigest:  pc.StateDigest(),
		powerDigest: qc.StateDigest(),
	}
	// Export the donor's frozen-refit operators alongside the posterior:
	// recipients adopt them instead of each rebuilding the identical bits.
	// Export failure just means recipients rebuild on demand.
	if oc, ok := t.perfSess.(baseline.OpsCarrier); ok {
		if ops, err := oc.FrozenOps(); err == nil {
			seed.perfOps = ops
		}
	}
	if oc, ok := t.powerSess.(baseline.OpsCarrier); ok {
		if ops, err := oc.FrozenOps(); err == nil {
			seed.powerOps = ops
		}
	}
	sh.seeds[t.class.Name] = seed
	mSeedCaptures.Inc()
}

// applySeed warm-starts t's freshly opened rung-0 sessions from a class
// seed. Not applied (false, nil) when the sessions cannot carry state or
// were built against a different prior — the tenant simply starts cold, as
// before seeds existed. A non-nil error means a half-applied transfer could
// not be rolled back to cold sessions, leaving the tenant unusable.
func (sh *shard) applySeed(t *tenant, seed *classSeed) (bool, error) {
	pc, okP := t.perfSess.(baseline.StateCarrier)
	qc, okQ := t.powerSess.(baseline.StateCarrier)
	if !okP || !okQ || pc.StateDigest() != seed.perfDigest || qc.StateDigest() != seed.powerDigest {
		return false, nil
	}
	if err := pc.RestoreSessionState(seed.perf); err != nil {
		return false, sh.openSessions(t)
	}
	if err := qc.RestoreSessionState(seed.power); err != nil {
		return false, sh.openSessions(t)
	}
	// Adopt the donor's shared frozen-refit operators so the transferred
	// tenant's first warm refit skips the O(n³) operator rebuild. Adoption is
	// digest-gated in core; a declined adopt just rebuilds bit-identically.
	if seed.perfOps != nil {
		if oc, ok := t.perfSess.(baseline.OpsCarrier); ok {
			oc.AdoptFrozenOps(seed.perfOps)
		}
	}
	if seed.powerOps != nil {
		if oc, ok := t.powerSess.(baseline.OpsCarrier); ok {
			oc.AdoptFrozenOps(seed.powerOps)
		}
	}
	t.seeded = true
	return true, nil
}

// openSessions (re)creates t's per-metric sessions at its current rung,
// releasing any previous pair to their estimators' free lists. On error the
// tenant's existing sessions are left in place.
func (sh *shard) openSessions(t *tenant) error {
	tier := t.class.Tiers[t.rung]
	perfSess, err := tier.Perf.NewSession(context.Background())
	if err != nil {
		return fmt.Errorf("service: opening %s performance session: %w", tier.Name, err)
	}
	powerSess, err := tier.Power.NewSession(context.Background())
	if err != nil {
		baseline.ReleaseSession(perfSess)
		return fmt.Errorf("service: opening %s power session: %w", tier.Name, err)
	}
	if t.perfSess != nil {
		baseline.ReleaseSession(t.perfSess)
	}
	if t.powerSess != nil {
		baseline.ReleaseSession(t.powerSess)
	}
	t.perfSess, t.powerSess = perfSess, powerSess
	return nil
}

// staged is one observe window whose sessions support batched fitting,
// parked between Stage and FinishFit.
type staged struct {
	req    *request
	ten    *tenant
	w      control.Window
	bfPerf baseline.BatchFitter
	bfPow  baseline.BatchFitter

	perfEst, powerEst []float64
	err               error
}

// processObserves serves a batch's observation windows. Multiple windows
// from one tenant are processed in arrival-order waves (a session can hold
// only one window at a time); within a wave, every tenant whose sessions
// support it is staged and refit through one core.FitBatch pass per
// (class, rung) group — the refit scheduler the shard exists for.
func (sh *shard) processObserves(observes []*request, shed bool) {
	if len(observes) == 0 {
		return
	}
	byTenant := make(map[string][]*request)
	var order []string
	waves := 0
	for _, r := range observes {
		if _, seen := byTenant[r.tenant]; !seen {
			order = append(order, r.tenant)
		}
		byTenant[r.tenant] = append(byTenant[r.tenant], r)
		if n := len(byTenant[r.tenant]); n > waves {
			waves = n
		}
	}
	for k := 0; k < waves; k++ {
		var wave []*request
		for _, name := range order {
			if rs := byTenant[name]; k < len(rs) {
				wave = append(wave, rs[k])
			}
		}
		sh.processWave(wave, shed)
	}
}

func (sh *shard) processWave(wave []*request, shed bool) {
	var items []*staged
	for _, r := range wave {
		t, ok := sh.tenants[r.tenant]
		if !ok {
			r.reply <- response{err: fmt.Errorf("%w: %q", ErrUnknownTenant, r.tenant)}
			continue
		}
		w := control.FilterWindow(r.obsIdx, r.perf, r.power)
		if len(w.ObsIdx) < sh.srv.cfg.Resilience.MinValidSamples {
			r.reply <- response{
				err:     fmt.Errorf("%w: only %d of %d probes usable", ErrTooFewSamples, len(w.ObsIdx), len(r.obsIdx)),
				dropped: w.Dropped,
			}
			continue
		}
		if shed {
			if rung, ok := sh.shedRung(t); ok {
				sh.fitShed(r, t, w, rung)
				continue
			}
		}
		bfPerf, okP := t.perfSess.(baseline.BatchFitter)
		bfPow, okQ := t.powerSess.(baseline.BatchFitter)
		if okP && okQ {
			it := &staged{req: r, ten: t, w: w, bfPerf: bfPerf, bfPow: bfPow}
			// Mirror control.FitWindow exactly: previous window out, new
			// window staged; the fit itself is deferred to the group pass.
			t.perfSess.DropObservations()
			t.powerSess.DropObservations()
			if err := bfPerf.Stage(w.ObsIdx, w.Perf); err != nil {
				it.err = fmt.Errorf("service: performance estimation: %w", err)
			} else if err := bfPow.Stage(w.ObsIdx, w.Power); err != nil {
				it.err = fmt.Errorf("service: power estimation: %w", err)
			}
			items = append(items, it)
			continue
		}
		// Sessions without batch support (the adapted baselines) fit inline
		// through the same shared code path the controller walks.
		perfEst, powerEst, err := control.FitWindow(context.Background(), t.perfSess, t.powerSess, w, sh.srv.cfg.Resilience)
		sh.finishWindow(r, t, w, perfEst, powerEst, err, t.rung, false)
	}
	sh.fitStaged(items)
	for _, it := range items {
		sh.finishWindow(it.req, it.ten, it.w, it.perfEst, it.powerEst, it.err, it.ten.rung, false)
	}
}

// shedRung picks the degraded rung a shed window runs on: one rung below
// the primary, never above the tenant's own sticky rung. False when the
// tenant is already at the ladder's bottom — nothing cheaper exists.
func (sh *shard) shedRung(t *tenant) (int, bool) {
	rung := t.rung + 1
	if rung >= len(t.class.Tiers) {
		return 0, false
	}
	return rung, true
}

// fitShed serves one window on the load-shedding rung with ephemeral
// sessions: the adapted baselines refit from scratch each window anyway, so
// a throwaway session is indistinguishable from a persistent one, and the
// tenant's own (expensive, warm) sessions are left untouched — its sticky
// rung does not change because the *server* fell behind.
func (sh *shard) fitShed(r *request, t *tenant, w control.Window, rung int) {
	tier := t.class.Tiers[rung]
	perfSess, err := tier.Perf.NewSession(context.Background())
	if err == nil {
		var powerSess baseline.Session
		powerSess, err = tier.Power.NewSession(context.Background())
		if err == nil {
			var perfEst, powerEst []float64
			perfEst, powerEst, err = control.FitWindow(context.Background(), perfSess, powerSess, w, sh.srv.cfg.Resilience)
			mShedWindows.Inc()
			baseline.ReleaseSession(perfSess)
			baseline.ReleaseSession(powerSess)
			sh.finishWindow(r, t, w, perfEst, powerEst, err, rung, true)
			return
		}
		baseline.ReleaseSession(perfSess)
	}
	sh.finishWindow(r, t, w, nil, nil, err, rung, true)
}

// fitStaged runs the coalesced refits: staged items grouped by
// (class, rung) — every group's core sessions share one immutable Prior by
// construction — one core.FitBatch pass per metric per group, under the
// same FitWatchdog deadline a serial fit gets. Power sessions are fitted
// only for tenants whose performance fit succeeded, exactly as the serial
// FitWindow path short-circuits, so batched state evolution is
// indistinguishable from serial.
func (sh *shard) fitStaged(items []*staged) {
	type groupKey struct {
		cl   *Class
		rung int
	}
	groups := make(map[groupKey][]*staged)
	var keys []groupKey
	for _, it := range items {
		if it.err != nil {
			continue // staging already failed
		}
		k := groupKey{it.ten.class, it.ten.rung}
		if _, seen := groups[k]; !seen {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], it)
	}
	for _, k := range keys {
		g := groups[k]
		ctx, cancel := watchdogContext(context.Background(), sh.srv.cfg.Resilience)

		perfSessions := make([]*core.Session, len(g))
		for i, it := range g {
			perfSessions[i] = it.bfPerf.CoreSession()
		}
		perfOut, batchErr := core.FitBatch(ctx, perfSessions)
		var survivors []*staged
		for i, it := range g {
			var res *core.Result
			var err error
			if i < len(perfOut) {
				res, err = perfOut[i].Result, perfOut[i].Err
			} else {
				err = batchErr // canceled before this session's turn
			}
			it.perfEst, err = it.bfPerf.FinishFit(res, err)
			if err != nil {
				it.err = fmt.Errorf("service: performance estimation: %w", err)
				continue
			}
			survivors = append(survivors, it)
		}

		powerSessions := make([]*core.Session, len(survivors))
		for i, it := range survivors {
			powerSessions[i] = it.bfPow.CoreSession()
		}
		powerOut, batchErr := core.FitBatch(ctx, powerSessions)
		for i, it := range survivors {
			var res *core.Result
			var err error
			if i < len(powerOut) {
				res, err = powerOut[i].Result, powerOut[i].Err
			} else {
				err = batchErr
			}
			it.powerEst, err = it.bfPow.FinishFit(res, err)
			if err != nil {
				it.err = fmt.Errorf("service: power estimation: %w", err)
				continue
			}
			// Jitter budgets, in FitWindow's order: performance first.
			if jerr := control.CheckJitter(it.ten.perfSess, "performance", sh.srv.cfg.Resilience.JitterBudget); jerr != nil {
				it.err = jerr
			} else if jerr := control.CheckJitter(it.ten.powerSess, "power", sh.srv.cfg.Resilience.JitterBudget); jerr != nil {
				it.err = jerr
			}
		}
		cancel()
	}
}

// finishWindow is the tail of the shared calibrate-window path for one
// tenant window: validate, journal the accepted window before its estimates
// take effect, sanitize, publish. Failures feed the tenant's
// retry-then-degrade ladder — except on shed windows, where the failure is
// the server's choice of rung, not the tenant's estimator.
func (sh *shard) finishWindow(r *request, t *tenant, w control.Window, perfEst, powerEst []float64, err error, rung int, shed bool) {
	cfg := &sh.srv.cfg
	if err == nil {
		err = control.ValidateEstimates(perfEst, powerEst, cfg.Space.N())
		if err != nil {
			err = fmt.Errorf("service: %s estimates rejected: %w", t.class.Tiers[rung].Name, err)
		}
	}
	if err != nil {
		mEstimationFailures.Inc()
		if !shed {
			t.estFails++
			if t.estFails >= cfg.Resilience.MaxEstimationFailures && t.rung+1 < len(t.class.Tiers) {
				t.rung++
				t.estFails = 0
				t.seeded = false // fresh cold sessions at the new rung
				mDegrades.Inc()
				// The tier name baked into cached plan replies changed.
				t.invalidatePlans()
				if serr := sh.openSessions(t); serr != nil {
					err = errors.Join(err, serr)
				}
			}
		}
		r.reply <- response{err: err, dropped: w.Dropped, rung: t.class.Tiers[rung].Name, shed: shed}
		return
	}
	// The seed-transfer marker rides the tenant's first owned window: replay
	// must re-apply the class seed before fitting that window, and only that
	// one — every later window fits from the session state it left behind.
	transferred := !shed && t.seeded && t.fitWindows == 0
	if sh.store != nil {
		rec := &persist.WindowRecord{
			Seq:    sh.store.LastSeq() + 1,
			Rung:   rung,
			ObsIdx: w.ObsIdx,
			Perf:   w.Perf,
			Power:  w.Power,
			Tenant: packTenantMeta(t, shed, transferred),
		}
		if jerr := sh.store.Append(rec); jerr != nil {
			r.reply <- response{err: fmt.Errorf("service: journaling window: %w", jerr), dropped: w.Dropped}
			return
		}
	}
	perf, power := control.SanitizeEstimates(perfEst, powerEst)
	// Own the published vectors: session Update may reuse its buffers on the
	// next fit, and replies must stay stable after the shard moves on.
	t.perfEst = append(t.perfEst[:0], perf...)
	t.powerEst = append(t.powerEst[:0], power...)
	t.windows++
	t.estFails = 0
	if !shed {
		t.fitWindows++
		// First-wins donation: the earliest successfully fitted rung-0
		// posterior of each class becomes its cold-start seed.
		if rung == 0 && sh.seeds[t.class.Name] == nil {
			sh.captureSeed(t)
		}
	}
	t.invalidatePlans()
	mWindows.Inc()
	r.reply <- response{windows: t.windows, dropped: w.Dropped, rung: t.class.Tiers[rung].Name, shed: shed}
}

func (sh *shard) estimate(r *request) {
	t, ok := sh.tenants[r.tenant]
	if !ok {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrUnknownTenant, r.tenant)}
		return
	}
	if t.perfEst == nil {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrNoEstimates, r.tenant)}
		return
	}
	r.reply <- response{
		perfEst:   append([]float64(nil), t.perfEst...),
		powerEst:  append([]float64(nil), t.powerEst...),
		idlePower: t.idlePower,
		rung:      t.class.Tiers[t.rung].Name,
		windows:   t.windows,
	}
}

// plan mirrors Controller.PlanContext's estimate-backed path float for
// float: minimize energy over the sanitized estimates; if they call the
// demand infeasible, fall back to the believed-fastest configuration run
// flat out. In capped mode (?cap=) it maximizes completed work under the
// power cap instead, with no fallback — a flat-out fallback would violate
// the cap the caller asked for.
//
// Replies are memoized per tenant: the Pareto frontier is built once per
// estimates generation, and each distinct (demand, deadline) is planned and
// JSON-encoded once, so steady-state planning is one map lookup.
func (sh *shard) plan(r *request) {
	t, ok := sh.tenants[r.tenant]
	if !ok {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrUnknownTenant, r.tenant)}
		return
	}
	if t.perfEst == nil {
		r.reply <- response{err: fmt.Errorf("%w: %q", ErrNoEstimates, r.tenant)}
		return
	}
	key := planKey{capped: r.capped, d1: math.Float64bits(r.work), d2: math.Float64bits(r.deadline)}
	if r.capped {
		key.d1 = math.Float64bits(r.powerCap)
	}
	if buf, hit := t.planCache[key]; hit {
		mPlanCacheHits.Inc()
		r.reply <- response{planJSON: buf}
		return
	}
	mPlanCacheMisses.Inc()
	plan := &sh.planScratch
	var err error
	if t.planner == nil {
		t.planner, err = pareto.NewPlanner(t.perfEst, t.powerEst, t.idlePower)
	}
	if err == nil {
		if r.capped {
			_, err = t.planner.MaximizePerformanceInto(r.powerCap, r.deadline, plan)
		} else {
			_, err = t.planner.MinimizeEnergyInto(r.work, r.deadline, plan)
		}
	}
	if err != nil {
		if r.capped {
			r.reply <- response{err: fmt.Errorf("%w: %v", ErrNoFeasiblePlan, err)}
			return
		}
		best := believedFastest(t.perfEst)
		if best < 0 {
			r.reply <- response{err: err}
			return
		}
		plan.Allocations = append(plan.Allocations[:0], pareto.Allocation{Index: best, Time: r.deadline})
		plan.IdleTime = 0
		plan.Rate = r.work / r.deadline
		plan.Energy = t.powerEst[best] * r.deadline
	}
	rung := t.class.Tiers[t.rung].Name
	buf, ok := appendPlanJSON(make([]byte, 0, 96+32*len(plan.Allocations)), plan, rung, t.estGen)
	if !ok {
		// Non-finite value in the plan: hand a private copy to the stdlib
		// path, which refuses to encode it exactly as it always has.
		cp := *plan
		cp.Allocations = append([]pareto.Allocation(nil), plan.Allocations...)
		r.reply <- response{plan: &cp, rung: rung, gen: t.estGen}
		return
	}
	if t.planCache == nil {
		t.planCache = make(map[planKey][]byte)
	} else if len(t.planCache) >= planCacheMax {
		clear(t.planCache)
	}
	t.planCache[key] = buf
	r.reply <- response{planJSON: buf}
}

// believedFastest is the controller's infeasible-demand fallback with no
// abandoned configurations: the highest finite estimated rate, -1 when
// every estimate is zero or worse.
func believedFastest(perfEst []float64) int {
	best, bestIdx := 0.0, -1
	for i, v := range perfEst {
		if v > best && !math.IsInf(v, 1) {
			best, bestIdx = v, i
		}
	}
	return bestIdx
}

// --- persistence -----------------------------------------------------------

// metaSep separates tenant metadata fields inside journal records and
// snapshot entry names. 0x1f (ASCII unit separator) cannot appear in tenant
// or class names the HTTP layer accepts.
const metaSep = "\x1f"

// packTenantMeta tags a journal record with everything replay needs to
// reconstruct the tenant it belongs to: name, class, idle power (exact,
// hex-packed bits), the tenant's own sticky rung, and an optional flags
// field — "s" when the window ran on the load-shedding rung, "t" when this
// is a seeded tenant's first owned window (replay re-applies the class seed
// before fitting it).
func packTenantMeta(t *tenant, shed, transferred bool) string {
	meta := t.name + metaSep + t.class.Name + metaSep +
		strconv.FormatUint(math.Float64bits(t.idlePower), 16) + metaSep +
		strconv.Itoa(t.rung)
	if shed || transferred {
		flags := ""
		if shed {
			flags += "s"
		}
		if transferred {
			flags += "t"
		}
		meta += metaSep + flags
	}
	return meta
}

type tenantMeta struct {
	name        string
	class       string
	idlePower   float64
	rung        int
	shed        bool
	transferred bool
}

func unpackTenantMeta(s string) (tenantMeta, error) {
	parts := strings.Split(s, metaSep)
	if len(parts) < 4 || len(parts) > 5 {
		return tenantMeta{}, fmt.Errorf("service: malformed tenant metadata %q", s)
	}
	bits, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return tenantMeta{}, fmt.Errorf("service: malformed idle power in %q: %w", s, err)
	}
	rung, err := strconv.Atoi(parts[3])
	if err != nil || rung < 0 {
		return tenantMeta{}, fmt.Errorf("service: malformed rung in %q", s)
	}
	m := tenantMeta{name: parts[0], class: parts[1], idlePower: math.Float64frombits(bits), rung: rung}
	if len(parts) == 5 {
		for _, f := range parts[4] {
			switch f {
			case 's':
				m.shed = true
			case 't':
				m.transferred = true
			default:
				return tenantMeta{}, fmt.Errorf("service: malformed flags in %q", s)
			}
		}
	}
	return m, nil
}

// snapshot persists every tenant's sessions into the shard's store, two
// entries per tenant (perf, power) named by the packed metadata so restore
// can rebuild the tenant without a registry, plus — for tenants that have
// estimates — an "est" entry carrying the published estimate vectors in a
// core.SessionState shell (Mu: perf, ObsVal: power, Sigma2: window count),
// so a gracefully restarted server serves plans immediately instead of
// answering 409 until the next observe. Deterministic order (sorted tenant
// names) so identical state writes identical snapshots.
func (sh *shard) snapshot() error {
	if sh.store == nil {
		return nil
	}
	snap := &persist.Snapshot{Seq: sh.store.LastSeq()}
	// Class seeds first: a tenant whose journaled first window carries the
	// transfer marker but replays on top of this snapshot needs the seed
	// available before its record is reached. Entry names start with the
	// separator, which no tenant name can, so restore tells them apart.
	classes := make([]string, 0, len(sh.seeds))
	for class := range sh.seeds {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		seed := sh.seeds[class]
		prefix := metaSep + "seed" + metaSep + class + metaSep
		snap.Sessions = append(snap.Sessions,
			persist.SessionEntry{Name: prefix + "perf", Digest: seed.perfDigest, State: seed.perf},
			persist.SessionEntry{Name: prefix + "power", Digest: seed.powerDigest, State: seed.power},
		)
	}
	names := make([]string, 0, len(sh.tenants))
	for name := range sh.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := sh.tenants[name]
		meta := packTenantMeta(t, false, t.seeded && t.fitWindows == 0)
		for _, m := range []struct {
			metric string
			sess   baseline.Session
		}{{"perf", t.perfSess}, {"power", t.powerSess}} {
			entry := persist.SessionEntry{Name: meta + metaSep + m.metric, State: &core.SessionState{}}
			if sc, ok := m.sess.(baseline.StateCarrier); ok {
				entry.Digest = sc.StateDigest()
				entry.State = sc.SessionState()
			}
			snap.Sessions = append(snap.Sessions, entry)
		}
		if t.perfEst != nil {
			snap.Sessions = append(snap.Sessions, persist.SessionEntry{
				Name: meta + metaSep + "est",
				State: &core.SessionState{
					Mu:     append([]float64(nil), t.perfEst...),
					ObsVal: append([]float64(nil), t.powerEst...),
					Sigma2: float64(t.windows),
				},
			})
		}
	}
	return sh.store.WriteSnapshot(snap)
}

// recover rebuilds the shard's tenants from its store: snapshot first
// (sessions restored warm when their prior digest still matches), then the
// journaled windows after it, replayed through the same serial code path a
// live batch reduces to — so the recovered estimates are bit-identical to
// the pre-crash ones for every journaled window.
func (sh *shard) recover() error {
	snap, err := sh.store.LoadSnapshot()
	if err != nil {
		return err
	}
	if snap != nil {
		for _, se := range snap.Sessions {
			// Seed entries lead with the separator — impossible for tenant
			// names — and restore the class's cold-start donation.
			if rest, isSeed := strings.CutPrefix(se.Name, metaSep+"seed"+metaSep); isSeed {
				class, metric, ok := strings.Cut(rest, metaSep)
				if !ok || (metric != "perf" && metric != "power") || se.State == nil {
					return fmt.Errorf("service: malformed seed entry %q", se.Name)
				}
				seed := sh.seeds[class]
				if seed == nil {
					seed = &classSeed{}
					sh.seeds[class] = seed
				}
				if metric == "perf" {
					seed.perf, seed.perfDigest = se.State, se.Digest
				} else {
					seed.power, seed.powerDigest = se.State, se.Digest
				}
				continue
			}
			// Entry names are the packed tenant metadata plus a metric
			// suffix: name/class/idle/rung[/flags]/("perf"|"power"|"est").
			i := strings.LastIndex(se.Name, metaSep)
			if i < 0 {
				return fmt.Errorf("service: malformed snapshot entry %q", se.Name)
			}
			metric := se.Name[i+1:]
			if metric != "perf" && metric != "power" && metric != "est" {
				return fmt.Errorf("service: snapshot entry %q: unknown metric", se.Name)
			}
			meta, err := unpackTenantMeta(se.Name[:i])
			if err != nil {
				return err
			}
			t, err := sh.restoreTenant(meta)
			if err != nil {
				return err
			}
			if t == nil {
				continue // capacity exceeded: tenant dropped
			}
			if metric == "est" {
				if se.State != nil && len(se.State.Mu) > 0 {
					t.perfEst = append([]float64(nil), se.State.Mu...)
					t.powerEst = append([]float64(nil), se.State.ObsVal...)
					t.windows = int(se.State.Sigma2)
					t.invalidatePlans()
				}
				continue
			}
			sess := t.perfSess
			if metric == "power" {
				sess = t.powerSess
			}
			sc, ok := sess.(baseline.StateCarrier)
			if ok && se.Digest != 0 && se.Digest == sc.StateDigest() && se.State != nil {
				if err := sc.RestoreSessionState(se.State); err != nil {
					return fmt.Errorf("service: restoring %q: %w", se.Name, err)
				}
			}
		}
	}
	var afterSeq uint64
	if snap != nil {
		afterSeq = snap.Seq
	}
	recs, err := sh.store.Replay(afterSeq)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.Tenant == "" {
			continue // not a service record
		}
		if err := sh.applyRecord(rec); err != nil {
			return err
		}
	}
	sh.met.tenants.Set(float64(len(sh.tenants)))
	return nil
}

// restoreTenant finds or creates the tenant a snapshot entry or journal
// record describes, moving it to the recorded sticky rung (fresh sessions
// on a rung change, exactly as a live degrade opens fresh ones). nil when
// the fleet-wide session cap is already spent.
func (sh *shard) restoreTenant(meta tenantMeta) (*tenant, error) {
	cl, ok := sh.srv.classes[meta.class]
	if !ok {
		return nil, fmt.Errorf("service: recovered tenant %q names unknown class %q", meta.name, meta.class)
	}
	if meta.rung >= len(cl.Tiers) {
		return nil, fmt.Errorf("service: recovered tenant %q rung %d beyond ladder", meta.name, meta.rung)
	}
	if t, exists := sh.tenants[meta.name]; exists {
		if t.rung != meta.rung {
			t.rung = meta.rung
			t.estFails = 0
			t.seeded = false
			t.invalidatePlans()
			if err := sh.openSessions(t); err != nil {
				return nil, err
			}
		}
		if meta.transferred {
			t.seeded = true
		}
		return t, nil
	}
	if !sh.srv.admit() {
		return nil, nil
	}
	t := &tenant{name: meta.name, class: cl, idlePower: meta.idlePower, rung: meta.rung}
	if t.idlePower <= 0 {
		t.idlePower = cl.IdlePower
	}
	if err := sh.openSessions(t); err != nil {
		sh.srv.unadmit()
		return nil, err
	}
	t.seeded = meta.transferred
	sh.tenants[meta.name] = t
	mTenants.Add(1)
	mRestoredTenants.Inc()
	return t, nil
}

// applyRecord replays one journaled window. Shed windows replay on
// ephemeral sessions at the recorded rung, exactly as they ran live; owned
// windows walk FitWindow — which a batched live fit is bit-identical to —
// so the tenant's sessions and estimates land where the crash left them.
func (sh *shard) applyRecord(rec *persist.WindowRecord) error {
	meta, err := unpackTenantMeta(rec.Tenant)
	if err != nil {
		return err
	}
	t, err := sh.restoreTenant(meta)
	if err != nil {
		return err
	}
	if t == nil {
		return nil // capacity exceeded: tenant dropped
	}
	w := control.Window{ObsIdx: rec.ObsIdx, Perf: rec.Perf, Power: rec.Power}
	var perfEst, powerEst []float64
	if meta.shed {
		if rec.Rung < 0 || rec.Rung >= len(t.class.Tiers) {
			return fmt.Errorf("service: journaled shed rung %d beyond ladder", rec.Rung)
		}
		tier := t.class.Tiers[rec.Rung]
		perfSess, serr := tier.Perf.NewSession(context.Background())
		if serr != nil {
			return serr
		}
		powerSess, serr := tier.Power.NewSession(context.Background())
		if serr != nil {
			return serr
		}
		perfEst, powerEst, err = control.FitWindow(context.Background(), perfSess, powerSess, w, sh.srv.cfg.Resilience)
	} else {
		if meta.transferred {
			// The record ran live on seed-transferred sessions; re-apply the
			// seed (captured earlier in this replay, or restored from the
			// snapshot) so the refit starts from the same posterior. On a
			// snapshot-restored, never-fitted tenant the re-apply is
			// idempotent.
			seed := sh.seeds[meta.class]
			if seed == nil {
				return fmt.Errorf("service: replaying window %d for %q: class %q transfer seed unavailable", rec.Seq, meta.name, meta.class)
			}
			applied, aerr := sh.applySeed(t, seed)
			if aerr != nil {
				return aerr
			}
			if !applied {
				return fmt.Errorf("service: replaying window %d for %q: class %q seed does not match the current prior", rec.Seq, meta.name, meta.class)
			}
		}
		perfEst, powerEst, err = control.FitWindow(context.Background(), t.perfSess, t.powerSess, w, sh.srv.cfg.Resilience)
	}
	if err == nil {
		err = control.ValidateEstimates(perfEst, powerEst, sh.srv.cfg.Space.N())
	}
	if err != nil {
		// A journaled window was accepted live; a failed replay means the
		// environment changed (e.g. different ladder). Surface it rather
		// than silently recovering different state.
		return fmt.Errorf("service: replaying window %d for %q: %w", rec.Seq, meta.name, err)
	}
	perf, power := control.SanitizeEstimates(perfEst, powerEst)
	t.perfEst = append(t.perfEst[:0], perf...)
	t.powerEst = append(t.powerEst[:0], power...)
	t.windows++
	if !meta.shed {
		t.fitWindows++
		// Mirror the live capture point record for record, so replay and the
		// run it reconstructs agree on every class's seed.
		if rec.Rung == 0 && sh.seeds[t.class.Name] == nil {
			sh.captureSeed(t)
		}
	}
	t.invalidatePlans()
	return nil
}
