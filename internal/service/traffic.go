package service

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"leo/internal/profile"
	"leo/internal/stream"
)

// Synthetic fleet traffic: an open-loop arrival schedule for benchmarking
// and smoke-testing the server. Every tenant draws its own Poisson process
// from its own stream.TenantSeed lane, so the schedule is deterministic for
// a given config — two runs of the generator produce byte-identical event
// streams — while still looking like a fleet: arrivals are memoryless, the
// aggregate rate follows a diurnal curve, and tenants are spread over
// classes round-robin.

// TrafficClass is one application class's ground truth the generator
// synthesizes observations from.
type TrafficClass struct {
	Name       string
	PerfTruth  []float64
	PowerTruth []float64
}

// TrafficConfig shapes a synthetic fleet.
type TrafficConfig struct {
	Seed    int64
	Tenants int
	Classes []TrafficClass
	// MeanRate is each tenant's mean observe-window rate (windows per
	// simulated second); plans piggyback on every window.
	MeanRate float64
	// DiurnalAmplitude in [0,1) modulates the rate sinusoidally:
	// λ(t) = MeanRate · (1 + A·sin(2πt/DiurnalPeriod)).
	DiurnalAmplitude float64
	DiurnalPeriod    float64
	// Duration is the simulated span in seconds.
	Duration float64
	// ProbesPerWindow configurations are probed per window.
	ProbesPerWindow int
	// Noise is the multiplicative observation noise (profile.Observe).
	Noise float64
	// PlansPerWindow is how many plan requests follow each observe window;
	// 0 means the classic single plan. Serving fleets read plans far more
	// often than they report windows, so throughput benchmarks raise this.
	PlansPerWindow int
	// PlanLevels quantizes plan demands onto this many discrete levels
	// instead of a continuous draw — the realistic shape (SLOs come in a few
	// flavors) and the one that exercises plan memoization. 0 keeps the
	// continuous draw.
	PlanLevels int
	// RegisterOnArrival moves each tenant's registration from t=0 to its
	// first window's arrival time, so a replay exercises admission cold
	// starts mid-run instead of front-loading them before measurement.
	RegisterOnArrival bool
}

// EventKind discriminates traffic events.
type EventKind int

const (
	EvRegister EventKind = iota
	EvObserve
	EvPlan
)

// Event is one tenant call, ready to be issued at At seconds.
type Event struct {
	At     float64
	Kind   EventKind
	Tenant string
	Class  string

	ObsIdx []int     // EvObserve
	Perf   []float64 // EvObserve
	Power  []float64 // EvObserve

	Work     float64 // EvPlan
	Deadline float64 // EvPlan
}

// GenerateTraffic renders the full event schedule, sorted by arrival time
// (registrations for all tenants land at t=0, before any window). The
// generator is open-loop: events carry no dependency on server responses,
// so replaying them against a server measures the server, not the client.
func GenerateTraffic(cfg TrafficConfig) ([]Event, error) {
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("service: traffic needs at least one tenant")
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("service: traffic needs at least one class")
	}
	if cfg.MeanRate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("service: traffic needs positive MeanRate and Duration")
	}
	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude >= 1 {
		return nil, fmt.Errorf("service: DiurnalAmplitude must be in [0,1)")
	}
	if cfg.DiurnalAmplitude > 0 && cfg.DiurnalPeriod <= 0 {
		return nil, fmt.Errorf("service: diurnal modulation needs a positive period")
	}
	for _, cl := range cfg.Classes {
		if len(cl.PerfTruth) == 0 || len(cl.PerfTruth) != len(cl.PowerTruth) {
			return nil, fmt.Errorf("service: class %q truth vectors must be nonempty and equal length", cl.Name)
		}
		if cfg.ProbesPerWindow <= 0 || cfg.ProbesPerWindow > len(cl.PerfTruth) {
			return nil, fmt.Errorf("service: ProbesPerWindow %d out of range for class %q", cfg.ProbesPerWindow, cl.Name)
		}
	}

	var events []Event
	for i := 0; i < cfg.Tenants; i++ {
		name := fmt.Sprintf("tenant-%06d", i)
		cl := cfg.Classes[i%len(cfg.Classes)]
		rng := rand.New(rand.NewSource(stream.TenantSeed(cfg.Seed, name)))
		windows := tenantWindows(cfg, name, cl, rng)
		regAt := 0.0
		if cfg.RegisterOnArrival && len(windows) > 0 {
			regAt = windows[0].At
		}
		events = append(events, Event{At: regAt, Kind: EvRegister, Tenant: name, Class: cl.Name})
		events = append(events, windows...)
	}
	// Stable sort: ties (t=0 registrations, or an on-arrival registration
	// against its own first window) keep append order, so the schedule is
	// deterministic end to end and a register precedes its first window.
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	return events, nil
}

// tenantWindows draws one tenant's windows as a non-homogeneous Poisson
// process by thinning: candidates arrive at the peak rate and survive with
// probability λ(t)/λmax. Every surviving window is followed immediately by
// a plan request — report, then ask what to do.
func tenantWindows(cfg TrafficConfig, name string, cl TrafficClass, rng *rand.Rand) []Event {
	lambdaMax := cfg.MeanRate * (1 + cfg.DiurnalAmplitude)
	var events []Event
	for t := rng.ExpFloat64() / lambdaMax; t < cfg.Duration; t += rng.ExpFloat64() / lambdaMax {
		if cfg.DiurnalAmplitude > 0 {
			lambda := cfg.MeanRate * (1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t/cfg.DiurnalPeriod))
			if rng.Float64()*lambdaMax > lambda {
				continue // thinned
			}
		}
		mask := profile.RandomMask(len(cl.PerfTruth), cfg.ProbesPerWindow, rng)
		perf := profile.Observe(cl.PerfTruth, mask, cfg.Noise, rng)
		power := profile.Observe(cl.PowerTruth, mask, cfg.Noise, rng)
		events = append(events, Event{
			At: t, Kind: EvObserve, Tenant: name, Class: cl.Name,
			ObsIdx: mask, Perf: perf.Values, Power: power.Values,
		})
		// Demand scaled to the believed range so plans exercise both the
		// two-point pareto path and the infeasible fallback occasionally.
		plans := cfg.PlansPerWindow
		if plans <= 0 {
			plans = 1
		}
		for p := 0; p < plans; p++ {
			frac := rng.Float64()
			if cfg.PlanLevels > 0 {
				frac = float64(rng.Intn(cfg.PlanLevels)) / float64(cfg.PlanLevels)
			}
			work := (0.25 + 0.75*frac) * maxOf(cl.PerfTruth)
			events = append(events, Event{
				At: t, Kind: EvPlan, Tenant: name, Class: cl.Name,
				Work: work, Deadline: 1,
			})
		}
	}
	return events
}

func maxOf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
