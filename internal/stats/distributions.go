package stats

import (
	"fmt"
	"math"
	"math/rand"

	"leo/internal/matrix"
)

// Gaussian is a univariate normal distribution N(Mu, Sigma²).
type Gaussian struct {
	Mu    float64
	Sigma float64 // standard deviation, must be > 0
}

// NewGaussian constructs a Gaussian; it panics if sigma <= 0.
func NewGaussian(mu, sigma float64) Gaussian {
	if sigma <= 0 {
		panic(fmt.Sprintf("stats: Gaussian sigma must be positive, got %g", sigma))
	}
	return Gaussian{Mu: mu, Sigma: sigma}
}

// PDF returns the probability density at x.
func (g Gaussian) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// LogPDF returns the log density at x.
func (g Gaussian) LogPDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return -0.5*z*z - math.Log(g.Sigma) - 0.5*math.Log(2*math.Pi)
}

// CDF returns P(X <= x).
func (g Gaussian) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-g.Mu)/(g.Sigma*math.Sqrt2))
}

// Sample draws one value using rng.
func (g Gaussian) Sample(rng *rand.Rand) float64 {
	return g.Mu + g.Sigma*rng.NormFloat64()
}

// MultivariateNormal is an n-dimensional Gaussian N(Mean, Cov) with the
// covariance held as its Cholesky factor for sampling and density queries.
type MultivariateNormal struct {
	Mean []float64
	chol *matrix.Cholesky
}

// NewMultivariateNormal builds the distribution; cov must be symmetric
// positive definite.
func NewMultivariateNormal(mean []float64, cov *matrix.Matrix) (*MultivariateNormal, error) {
	if cov.Rows != len(mean) || cov.Cols != len(mean) {
		return nil, fmt.Errorf("stats: covariance %dx%d does not match mean length %d", cov.Rows, cov.Cols, len(mean))
	}
	ch, err := matrix.NewCholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("stats: covariance not SPD: %w", err)
	}
	return &MultivariateNormal{Mean: matrix.CloneVec(mean), chol: ch}, nil
}

// Dim returns the dimensionality.
func (m *MultivariateNormal) Dim() int { return len(m.Mean) }

// Sample draws one vector using rng.
func (m *MultivariateNormal) Sample(rng *rand.Rand) []float64 {
	z := make([]float64, m.Dim())
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	out := m.chol.MulLVec(z)
	for i, v := range m.Mean {
		out[i] += v
	}
	return out
}

// LogPDF returns the log density at x.
func (m *MultivariateNormal) LogPDF(x []float64) float64 {
	if len(x) != m.Dim() {
		panic(fmt.Sprintf("stats: LogPDF dimension %d != %d", len(x), m.Dim()))
	}
	diff := matrix.SubVec(x, m.Mean)
	sol := m.chol.SolveVec(diff)
	quad := matrix.Dot(diff, sol)
	n := float64(m.Dim())
	return -0.5 * (quad + m.chol.LogDet() + n*math.Log(2*math.Pi))
}

// SampleGamma draws from Gamma(shape, 1) using the Marsaglia–Tsang method,
// valid for shape > 0.
func SampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic(fmt.Sprintf("stats: gamma shape must be positive, got %g", shape))
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return SampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// SampleChiSquared draws from a chi-squared distribution with df degrees of
// freedom.
func SampleChiSquared(rng *rand.Rand, df float64) float64 {
	return 2 * SampleGamma(rng, df/2)
}

// Wishart is a Wishart distribution W(V, nu) over p×p SPD matrices, with
// scale matrix V and nu >= p degrees of freedom.
type Wishart struct {
	nu   float64
	p    int
	chol *matrix.Cholesky // factor of the scale matrix V
}

// NewWishart builds a Wishart distribution; scale must be SPD and nu >= p.
func NewWishart(scale *matrix.Matrix, nu float64) (*Wishart, error) {
	if scale.Rows != scale.Cols {
		return nil, fmt.Errorf("stats: Wishart scale must be square, got %dx%d", scale.Rows, scale.Cols)
	}
	if nu < float64(scale.Rows) {
		return nil, fmt.Errorf("stats: Wishart needs nu >= p, got nu=%g p=%d", nu, scale.Rows)
	}
	ch, err := matrix.NewCholesky(scale)
	if err != nil {
		return nil, fmt.Errorf("stats: Wishart scale not SPD: %w", err)
	}
	return &Wishart{nu: nu, p: scale.Rows, chol: ch}, nil
}

// Sample draws one SPD matrix via the Bartlett decomposition.
func (w *Wishart) Sample(rng *rand.Rand) *matrix.Matrix {
	p := w.p
	// Lower-triangular A: diag sqrt(chi²(nu-i)), below-diag N(0,1).
	a := matrix.New(p, p)
	for i := 0; i < p; i++ {
		a.Set(i, i, math.Sqrt(SampleChiSquared(rng, w.nu-float64(i))))
		for j := 0; j < i; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	// Sample = L A A' L' where V = L L'.
	la := w.chol.L().Mul(a)
	return la.Mul(la.Transpose()).Symmetrize()
}

// InverseWishart is an inverse-Wishart distribution IW(Psi, nu): if
// X ~ W(Psi^{-1}, nu) then X^{-1} ~ IW(Psi, nu).
type InverseWishart struct {
	w *Wishart
}

// NewInverseWishart builds an inverse-Wishart distribution with SPD scale
// matrix psi and nu >= p degrees of freedom.
func NewInverseWishart(psi *matrix.Matrix, nu float64) (*InverseWishart, error) {
	ch, err := matrix.NewCholesky(psi)
	if err != nil {
		return nil, fmt.Errorf("stats: InverseWishart scale not SPD: %w", err)
	}
	w, err := NewWishart(ch.Inverse(), nu)
	if err != nil {
		return nil, err
	}
	return &InverseWishart{w: w}, nil
}

// Sample draws one SPD matrix from the inverse-Wishart distribution.
func (iw *InverseWishart) Sample(rng *rand.Rand) (*matrix.Matrix, error) {
	x := iw.w.Sample(rng)
	ch, _, err := matrix.NewCholeskyJitter(x, 1e-12, 8)
	if err != nil {
		return nil, fmt.Errorf("stats: inverse-Wishart draw not invertible: %w", err)
	}
	return ch.Inverse(), nil
}

// NormalInverseWishart is the conjugate prior used by LEO's hierarchy
// (Eq. 2): (μ, Σ) ~ N(μ₀, Σ/π) · IW(Σ | ν, Ψ). The paper fixes
// μ₀ = 0, π = 1, Ψ = I, ν = 1.
type NormalInverseWishart struct {
	Mu0 []float64
	Pi  float64
	Psi *matrix.Matrix
	Nu  float64
}

// DefaultNIW returns the paper's hyper-parameter setting for an n-dimensional
// configuration space: μ₀ = 0, π = 1, Ψ = I, ν = 1.
func DefaultNIW(n int) NormalInverseWishart {
	return NormalInverseWishart{
		Mu0: matrix.Zeros(n),
		Pi:  1,
		Psi: matrix.Identity(n),
		Nu:  1,
	}
}

// Sample draws (μ, Σ) from the prior. Because sampling Σ ~ IW(ν, Ψ) needs
// ν >= n, draws use max(ν, n+2) degrees of freedom; the EM algorithm itself
// never samples from the prior — this exists for model checking and tests.
func (p NormalInverseWishart) Sample(rng *rand.Rand) (mu []float64, sigma *matrix.Matrix, err error) {
	n := len(p.Mu0)
	nu := p.Nu
	if nu < float64(n)+2 {
		nu = float64(n) + 2
	}
	iw, err := NewInverseWishart(p.Psi, nu)
	if err != nil {
		return nil, nil, err
	}
	sigma, err = iw.Sample(rng)
	if err != nil {
		return nil, nil, err
	}
	mvn, err := NewMultivariateNormal(p.Mu0, sigma.Scale(1/p.Pi))
	if err != nil {
		return nil, nil, err
	}
	return mvn.Sample(rng), sigma, nil
}
