package stats

import (
	"math"
	"math/rand"
	"testing"

	"leo/internal/matrix"
)

func TestGaussianPDF(t *testing.T) {
	g := NewGaussian(0, 1)
	want := 1 / math.Sqrt(2*math.Pi)
	if p := g.PDF(0); math.Abs(p-want) > 1e-12 {
		t.Fatalf("PDF(0) = %g, want %g", p, want)
	}
	if math.Abs(math.Log(g.PDF(1.3))-g.LogPDF(1.3)) > 1e-12 {
		t.Fatal("LogPDF inconsistent with PDF")
	}
}

func TestGaussianCDF(t *testing.T) {
	g := NewGaussian(0, 1)
	if c := g.CDF(0); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("CDF(0) = %g", c)
	}
	if c := g.CDF(1.96); math.Abs(c-0.975) > 1e-3 {
		t.Fatalf("CDF(1.96) = %g", c)
	}
	shifted := NewGaussian(5, 2)
	if c := shifted.CDF(5); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("shifted CDF(mean) = %g", c)
	}
}

func TestGaussianInvalidSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGaussian(0, 0)
}

func TestGaussianSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	g := NewGaussian(3, 2)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Sample(rng)
	}
	if m := Mean(xs); math.Abs(m-3) > 0.1 {
		t.Fatalf("sample mean = %g", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.1 {
		t.Fatalf("sample stddev = %g", s)
	}
}

func TestMultivariateNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mean := []float64{1, -2}
	cov := matrix.NewFromRows([][]float64{{2, 0.8}, {0.8, 1}})
	mvn, err := NewMultivariateNormal(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	n := 30000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		v := mvn.Sample(rng)
		xs[i], ys[i] = v[0], v[1]
	}
	if math.Abs(Mean(xs)-1) > 0.05 || math.Abs(Mean(ys)+2) > 0.05 {
		t.Fatalf("sample means = %g, %g", Mean(xs), Mean(ys))
	}
	if math.Abs(Variance(xs)-2) > 0.1 {
		t.Fatalf("sample var x = %g", Variance(xs))
	}
	if math.Abs(Covariance(xs, ys)-0.8) > 0.05 {
		t.Fatalf("sample cov = %g", Covariance(xs, ys))
	}
}

func TestMultivariateNormalLogPDF(t *testing.T) {
	// Independent standard normal: log pdf at 0 is -n/2 log(2π).
	mean := []float64{0, 0, 0}
	mvn, err := NewMultivariateNormal(mean, matrix.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	want := -1.5 * math.Log(2*math.Pi)
	if lp := mvn.LogPDF([]float64{0, 0, 0}); math.Abs(lp-want) > 1e-12 {
		t.Fatalf("LogPDF = %g, want %g", lp, want)
	}
	// Matches the product of univariate log densities at an offset point.
	g := NewGaussian(0, 1)
	x := []float64{0.3, -1.2, 2.2}
	want = g.LogPDF(x[0]) + g.LogPDF(x[1]) + g.LogPDF(x[2])
	if lp := mvn.LogPDF(x); math.Abs(lp-want) > 1e-12 {
		t.Fatalf("LogPDF = %g, want %g", lp, want)
	}
}

func TestMultivariateNormalErrors(t *testing.T) {
	if _, err := NewMultivariateNormal([]float64{0}, matrix.Identity(2)); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	bad := matrix.NewFromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := NewMultivariateNormal([]float64{0, 0}, bad); err == nil {
		t.Fatal("non-SPD covariance must error")
	}
}

func TestSampleGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, shape := range []float64{0.5, 1, 2.5, 10} {
		n := 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = SampleGamma(rng, shape)
		}
		// Gamma(k,1): mean k, variance k.
		if m := Mean(xs); math.Abs(m-shape) > 0.15*math.Max(1, shape) {
			t.Fatalf("shape %g: sample mean %g", shape, m)
		}
		if v := Variance(xs); math.Abs(v-shape) > 0.25*math.Max(1, shape) {
			t.Fatalf("shape %g: sample variance %g", shape, v)
		}
	}
}

func TestSampleGammaInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleGamma(rand.New(rand.NewSource(1)), -1)
}

func TestSampleChiSquaredMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	df := 4.0
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = SampleChiSquared(rng, df)
	}
	if m := Mean(xs); math.Abs(m-df) > 0.2 {
		t.Fatalf("chi² mean = %g, want %g", m, df)
	}
	if v := Variance(xs); math.Abs(v-2*df) > 1 {
		t.Fatalf("chi² variance = %g, want %g", v, 2*df)
	}
}

func TestWishartMean(t *testing.T) {
	// E[W(V, nu)] = nu * V.
	rng := rand.New(rand.NewSource(34))
	scale := matrix.NewFromRows([][]float64{{1, 0.3}, {0.3, 0.5}})
	nu := 6.0
	w, err := NewWishart(scale, nu)
	if err != nil {
		t.Fatal(err)
	}
	sum := matrix.New(2, 2)
	n := 4000
	for i := 0; i < n; i++ {
		sum.AddInPlace(w.Sample(rng))
	}
	mean := sum.Scale(1 / float64(n))
	want := scale.Scale(nu)
	if !mean.Equal(want, 0.25) {
		t.Fatalf("Wishart sample mean %v, want %v", mean, want)
	}
}

func TestWishartSamplesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	w, err := NewWishart(matrix.Identity(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s := w.Sample(rng)
		if !s.IsSymmetric(1e-10) {
			t.Fatal("Wishart draw not symmetric")
		}
		if _, err := matrix.NewCholesky(s); err != nil {
			t.Fatalf("Wishart draw not PD: %v", err)
		}
	}
}

func TestWishartErrors(t *testing.T) {
	if _, err := NewWishart(matrix.New(2, 3), 5); err == nil {
		t.Fatal("non-square scale must error")
	}
	if _, err := NewWishart(matrix.Identity(3), 2); err == nil {
		t.Fatal("nu < p must error")
	}
	bad := matrix.NewFromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := NewWishart(bad, 5); err == nil {
		t.Fatal("non-SPD scale must error")
	}
}

func TestInverseWishartSamplesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	iw, err := NewInverseWishart(matrix.Identity(3), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s, err := iw.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := matrix.NewCholesky(s); err != nil {
			t.Fatalf("inverse-Wishart draw not PD: %v", err)
		}
	}
}

func TestInverseWishartMean(t *testing.T) {
	// E[IW(Psi, nu)] = Psi / (nu - p - 1) for nu > p + 1.
	rng := rand.New(rand.NewSource(37))
	psi := matrix.Identity(2).Scale(3)
	nu := 8.0
	iw, err := NewInverseWishart(psi, nu)
	if err != nil {
		t.Fatal(err)
	}
	sum := matrix.New(2, 2)
	n := 4000
	for i := 0; i < n; i++ {
		s, err := iw.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		sum.AddInPlace(s)
	}
	mean := sum.Scale(1 / float64(n))
	want := psi.Scale(1 / (nu - 2 - 1))
	if !mean.Equal(want, 0.15) {
		t.Fatalf("IW sample mean %v, want %v", mean, want)
	}
}

func TestDefaultNIW(t *testing.T) {
	p := DefaultNIW(4)
	if len(p.Mu0) != 4 || p.Pi != 1 || p.Nu != 1 {
		t.Fatalf("DefaultNIW = %+v", p)
	}
	if !p.Psi.Equal(matrix.Identity(4), 0) {
		t.Fatal("DefaultNIW Psi must be identity")
	}
}

func TestNIWSample(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	p := DefaultNIW(3)
	mu, sigma, err := p.Sample(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(mu) != 3 {
		t.Fatalf("mu length %d", len(mu))
	}
	if _, err := matrix.NewCholesky(sigma); err != nil {
		t.Fatalf("sampled Σ not PD: %v", err)
	}
}
