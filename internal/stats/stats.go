// Package stats provides the statistical primitives used by LEO: summary
// statistics, the paper's accuracy metric (Eq. 5), Gaussian and multivariate
// Gaussian distributions, and the normal-inverse-Wishart prior from the
// hierarchical model (Eq. 2).
package stats

import (
	"fmt"
	"math"
	"sort"

	"leo/internal/matrix"
)

// Accuracy implements Equation (5) of the paper:
//
//	accuracy(ŷ, y) = max(1 - ||ŷ-y||²₂ / ||y-ȳ||²₂, 0)
//
// i.e. a coefficient-of-determination clipped at zero. Unity is a perfect
// estimate; zero means the estimate is no better than predicting the mean.
func Accuracy(estimate, truth []float64) float64 {
	if len(estimate) != len(truth) {
		panic(fmt.Sprintf("stats: Accuracy length mismatch %d vs %d", len(estimate), len(truth)))
	}
	if len(truth) == 0 {
		return 0
	}
	mean := Mean(truth)
	num, den := 0.0, 0.0
	for i, y := range truth {
		d := estimate[i] - y
		num += d * d
		c := y - mean
		den += c * c
	}
	if den == 0 {
		// Constant truth: perfect only if the estimate matches it exactly.
		if num == 0 {
			return 1
		}
		return 0
	}
	acc := 1 - num/den
	if acc < 0 {
		return 0
	}
	return acc
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x (0 for fewer than 2 values).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// RMSE returns the root-mean-square error between estimate and truth.
func RMSE(estimate, truth []float64) float64 {
	if len(estimate) != len(truth) {
		panic(fmt.Sprintf("stats: RMSE length mismatch %d vs %d", len(estimate), len(truth)))
	}
	if len(truth) == 0 {
		return 0
	}
	s := 0.0
	for i, y := range truth {
		d := estimate[i] - y
		s += d * d
	}
	return math.Sqrt(s / float64(len(truth)))
}

// MAE returns the mean absolute error between estimate and truth.
func MAE(estimate, truth []float64) float64 {
	if len(estimate) != len(truth) {
		panic(fmt.Sprintf("stats: MAE length mismatch %d vs %d", len(estimate), len(truth)))
	}
	if len(truth) == 0 {
		return 0
	}
	s := 0.0
	for i, y := range truth {
		s += math.Abs(estimate[i] - y)
	}
	return s / float64(len(truth))
}

// Median returns the median of x (0 for empty input). The input is not
// modified.
func Median(x []float64) float64 {
	return Percentile(x, 50)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of x using linear
// interpolation between order statistics. The input is not modified.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of [0,100]", p))
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeometricMean returns the geometric mean of strictly positive values; it
// panics if any value is non-positive.
func GeometricMean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		if v <= 0 {
			panic(fmt.Sprintf("stats: GeometricMean requires positive values, got %g", v))
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(x)))
}

// Covariance returns the population covariance of x and y.
func Covariance(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Covariance length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	s := 0.0
	for i := range x {
		s += (x[i] - mx) * (y[i] - my)
	}
	return s / float64(len(x))
}

// Correlation returns the Pearson correlation of x and y (0 when either is
// constant).
func Correlation(x, y []float64) float64 {
	sx, sy := StdDev(x), StdDev(y)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(x, y) / (sx * sy)
}

// ColumnMeans returns the per-column mean of an apps×configs matrix — the
// Offline estimator's prediction (mean over previously observed apps).
func ColumnMeans(m *matrix.Matrix) []float64 {
	out := make([]float64, m.Cols)
	if m.Rows == 0 {
		return out
	}
	for r := 0; r < m.Rows; r++ {
		row := m.RowView(r)
		for c, v := range row {
			out[c] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for c := range out {
		out[c] *= inv
	}
	return out
}
