package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"leo/internal/matrix"
)

func TestAccuracyPerfect(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if a := Accuracy(y, y); a != 1 {
		t.Fatalf("perfect accuracy = %g", a)
	}
}

func TestAccuracyMeanPredictor(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	est := []float64{2.5, 2.5, 2.5, 2.5}
	if a := Accuracy(est, y); a != 0 {
		t.Fatalf("mean predictor accuracy = %g, want 0", a)
	}
}

func TestAccuracyClippedAtZero(t *testing.T) {
	y := []float64{1, 2, 3}
	est := []float64{100, -50, 7}
	if a := Accuracy(est, y); a != 0 {
		t.Fatalf("terrible predictor accuracy = %g, want clipped 0", a)
	}
}

func TestAccuracyConstantTruth(t *testing.T) {
	y := []float64{5, 5, 5}
	if a := Accuracy([]float64{5, 5, 5}, y); a != 1 {
		t.Fatalf("exact constant accuracy = %g", a)
	}
	if a := Accuracy([]float64{5, 5, 6}, y); a != 0 {
		t.Fatalf("inexact constant accuracy = %g", a)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if a := Accuracy(nil, nil); a != 0 {
		t.Fatalf("empty accuracy = %g", a)
	}
}

func TestAccuracyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]float64{1}, []float64{1, 2})
}

func TestAccuracyBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(30))
		y := make([]float64, n)
		est := make([]float64, n)
		for i := range y {
			y[i] = r.NormFloat64() * 10
			est[i] = r.NormFloat64() * 10
		}
		a := Accuracy(est, y)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAccuracyMonotoneInNoise: adding more noise to a perfect estimate must
// not increase accuracy (statistically; we use fixed scaling of one error
// vector so it is deterministic).
func TestAccuracyMonotoneInNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 50
	y := make([]float64, n)
	noise := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64() * 5
		noise[i] = rng.NormFloat64()
	}
	prev := 1.1
	for _, scale := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		est := make([]float64, n)
		for i := range est {
			est[i] = y[i] + scale*noise[i]
		}
		a := Accuracy(est, y)
		if a > prev+1e-12 {
			t.Fatalf("accuracy rose from %g to %g as noise scaled to %g", prev, a, scale)
		}
		prev = a
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Fatalf("Mean = %g", m)
	}
	if v := Variance(x); v != 4 {
		t.Fatalf("Variance = %g", v)
	}
	if s := StdDev(x); s != 2 {
		t.Fatalf("StdDev = %g", s)
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-value variance should be 0")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	est := []float64{1, 2, 3}
	truth := []float64{1, 2, 7}
	want := math.Sqrt(16.0 / 3.0)
	if r := RMSE(est, truth); math.Abs(r-want) > 1e-12 {
		t.Fatalf("RMSE = %g, want %g", r, want)
	}
	if m := MAE(est, truth); math.Abs(m-4.0/3.0) > 1e-12 {
		t.Fatalf("MAE = %g", m)
	}
	if RMSE(nil, nil) != 0 || MAE(nil, nil) != 0 {
		t.Fatal("empty RMSE/MAE should be 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	x := []float64{3, 1, 2}
	if m := Median(x); m != 2 {
		t.Fatalf("Median = %g", m)
	}
	// Input must not be modified.
	if x[0] != 3 {
		t.Fatal("Median must not sort in place")
	}
	even := []float64{1, 2, 3, 4}
	if m := Median(even); m != 2.5 {
		t.Fatalf("even Median = %g", m)
	}
	if p := Percentile(even, 0); p != 1 {
		t.Fatalf("P0 = %g", p)
	}
	if p := Percentile(even, 100); p != 4 {
		t.Fatalf("P100 = %g", p)
	}
	if p := Percentile(even, 25); math.Abs(p-1.75) > 1e-12 {
		t.Fatalf("P25 = %g", p)
	}
	if Percentile([]float64{9}, 73) != 9 {
		t.Fatal("single-element percentile")
	}
}

func TestPercentileRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestGeometricMean(t *testing.T) {
	if g := GeometricMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeometricMean = %g", g)
	}
	if GeometricMean(nil) != 0 {
		t.Fatal("empty geometric mean should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive value")
		}
	}()
	GeometricMean([]float64{1, 0})
}

func TestCovarianceCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8} // perfectly correlated
	if c := Correlation(x, y); math.Abs(c-1) > 1e-12 {
		t.Fatalf("Correlation = %g, want 1", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := Correlation(x, neg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("Correlation = %g, want -1", c)
	}
	if Correlation(x, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("correlation with constant should be 0")
	}
}

func TestColumnMeans(t *testing.T) {
	m := matrix.NewFromRows([][]float64{{1, 2, 3}, {3, 4, 5}})
	got := ColumnMeans(m)
	want := []float64{2, 3, 4}
	if matrix.MaxAbsDiffVec(got, want) > 1e-15 {
		t.Fatalf("ColumnMeans = %v", got)
	}
	empty := ColumnMeans(matrix.New(0, 3))
	if len(empty) != 3 || empty[0] != 0 {
		t.Fatalf("empty ColumnMeans = %v", empty)
	}
}
