// Package stream centralizes the deterministic pseudo-random stream
// derivations the runtime relies on for replayability. Every consumer of
// randomness — the machine's measurement noise, the controller's probe
// order, a synthetic tenant's observation schedule — derives its seed from
// (base seed, identity) through the functions here, so that two processes
// given the same base seed make the same draws regardless of scheduling:
// the recovery-equivalence contract of the crash-safe service mode and the
// bit-reproducibility of the synthetic traffic generator both reduce to
// this package.
package stream

import (
	"hash/fnv"
	"math/rand"
)

// windowStride separates the seed lanes of consecutive calibration windows.
// It is a prime comfortably larger than the per-window lane count so lanes
// of different windows never collide.
const windowStride = 1000003

// MachineSeed is the seed of the machine's measurement-noise stream for the
// given calibration window. A process that re-probes window w after a crash
// draws the very noise the original process would have.
func MachineSeed(seed int64, window int) int64 {
	return seed + int64(window)*windowStride + 1
}

// ControlSeed is the seed of the controller's probe-selection stream for
// the given calibration window.
func ControlSeed(seed int64, window int) int64 {
	return seed + int64(window)*windowStride + 2
}

// ReseedWindow pins both per-window streams to the (seed, window) lanes, in
// place. Callers reseed before every window rather than letting the streams
// free-run so the draws of window w never depend on how many windows came
// before it in this process.
func ReseedWindow(mach, ctrl *rand.Rand, seed int64, window int) {
	mach.Seed(MachineSeed(seed, window))
	ctrl.Seed(ControlSeed(seed, window))
}

// Hash64 is the FNV-1a hash of s: the stable, dependency-free identity hash
// used to place tenants on shards and to derive per-tenant seed lanes.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// TenantSeed derives the seed of a tenant's private stream from the base
// seed and the tenant's name. Distinct tenants land on distinct lanes (up
// to hash collisions), and the derivation depends only on the name — not on
// registration order — so replaying a traffic schedule reproduces every
// tenant's draws regardless of arrival interleaving.
func TenantSeed(seed int64, tenant string) int64 {
	return seed + int64(Hash64(tenant)&0x7fffffffffff)
}
