package stream

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// The seed lanes are load-bearing: state-dir recovery replays journaled
// windows against streams reseeded by these exact formulas, so changing
// them silently breaks crash-recovery equivalence for existing state
// directories. Pin the arithmetic.
func TestSeedLanesMatchLegacyFormulas(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7} {
		for _, w := range []int{0, 1, 5, 1000} {
			if got, want := MachineSeed(seed, w), seed+int64(w)*1000003+1; got != want {
				t.Errorf("MachineSeed(%d,%d) = %d, want %d", seed, w, got, want)
			}
			if got, want := ControlSeed(seed, w), seed+int64(w)*1000003+2; got != want {
				t.Errorf("ControlSeed(%d,%d) = %d, want %d", seed, w, got, want)
			}
		}
	}
}

func TestReseedWindowMatchesManualSeeding(t *testing.T) {
	mach := rand.New(rand.NewSource(0))
	ctrl := rand.New(rand.NewSource(0))
	// Burn some draws so ReseedWindow must actually reset the state.
	for i := 0; i < 13; i++ {
		mach.Float64()
		ctrl.Float64()
	}
	ReseedWindow(mach, ctrl, 9, 3)

	wantMach := rand.New(rand.NewSource(MachineSeed(9, 3)))
	wantCtrl := rand.New(rand.NewSource(ControlSeed(9, 3)))
	for i := 0; i < 8; i++ {
		if got, want := mach.Float64(), wantMach.Float64(); got != want {
			t.Fatalf("draw %d: machine stream %g, want %g", i, got, want)
		}
		if got, want := ctrl.Float64(), wantCtrl.Float64(); got != want {
			t.Fatalf("draw %d: control stream %g, want %g", i, got, want)
		}
	}
}

func TestHash64IsFNV1a(t *testing.T) {
	for _, s := range []string{"", "kmeans", "tenant-000042", "x264"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := Hash64(s), h.Sum64(); got != want {
			t.Errorf("Hash64(%q) = %#x, want %#x", s, got, want)
		}
	}
}

func TestTenantSeedStableAndDistinct(t *testing.T) {
	a := TenantSeed(1, "tenant-0")
	if b := TenantSeed(1, "tenant-0"); a != b {
		t.Fatalf("TenantSeed not deterministic: %d vs %d", a, b)
	}
	if b := TenantSeed(1, "tenant-1"); a == b {
		t.Fatalf("distinct tenants share a seed lane: %d", a)
	}
	if b := TenantSeed(2, "tenant-0"); a == b {
		t.Fatalf("distinct base seeds share a lane: %d", a)
	}
}
