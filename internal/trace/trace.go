// Package trace generates utilization traces — sequences of performance
// demands over time — for driving the runtime controller through realistic
// deployment patterns: the diurnal curves of interactive services, Poisson
// job arrivals, bursty on/off demand, and Markov-modulated phase switches.
// The paper's premise is that systems "run at a wide range of utilizations"
// (§1); these generators provide that range deterministically from a seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is one interval of a utilization trace.
type Point struct {
	Start       float64 // seconds since trace start
	Duration    float64 // seconds
	Utilization float64 // demanded fraction of peak performance, [0,1]
}

// Trace is a sequence of contiguous utilization intervals.
type Trace []Point

// TotalDuration returns the trace's length in seconds: the maximum end time
// (Start + Duration) over all points. For a Validate-clean trace that is the
// last point's end, but hand-built traces with gaps, overlaps, or a trailing
// zero-duration marker are measured correctly too. Points whose duration is
// NaN or negative contribute only their start time.
func (tr Trace) TotalDuration() float64 {
	end := 0.0
	for _, p := range tr {
		e := p.Start
		if p.Duration > 0 { // false for NaN and negatives
			e += p.Duration
		}
		if e > end {
			end = e
		}
	}
	return end
}

// MeanUtilization returns the duration-weighted mean demand. Points that
// carry no weight — zero, negative, or NaN duration — are skipped, so a
// degenerate trace yields 0 rather than NaN.
func (tr Trace) MeanUtilization() float64 {
	total, weighted := 0.0, 0.0
	for _, p := range tr {
		if !(p.Duration > 0) { // skip NaN and non-positive durations
			continue
		}
		total += p.Duration
		weighted += p.Utilization * p.Duration
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// Validate checks contiguity and bounds.
func (tr Trace) Validate() error {
	at := 0.0
	for i, p := range tr {
		if math.Abs(p.Start-at) > 1e-9 {
			return fmt.Errorf("trace: point %d starts at %g, expected %g", i, p.Start, at)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("trace: point %d has non-positive duration %g", i, p.Duration)
		}
		if p.Utilization < 0 || p.Utilization > 1 {
			return fmt.Errorf("trace: point %d utilization %g outside [0,1]", i, p.Utilization)
		}
		at += p.Duration
	}
	return nil
}

// Diurnal builds a day-like curve: `intervals` equal slices whose demand
// follows a raised sine between low and high.
func Diurnal(intervals int, interval, low, high float64) (Trace, error) {
	if intervals <= 0 || interval <= 0 {
		return nil, fmt.Errorf("trace: invalid diurnal shape %d × %g", intervals, interval)
	}
	if low < 0 || high > 1 || low > high {
		return nil, fmt.Errorf("trace: invalid diurnal range [%g, %g]", low, high)
	}
	tr := make(Trace, intervals)
	for i := range tr {
		phase := math.Sin(math.Pi * float64(i) / float64(intervals))
		tr[i] = Point{
			Start:       float64(i) * interval,
			Duration:    interval,
			Utilization: low + (high-low)*phase*phase,
		}
	}
	return tr, nil
}

// Poisson builds a trace where each interval's demand is the offered load
// of Poisson job arrivals: arrivals in an interval are Poisson(lambda ·
// interval), each contributing jobCost utilization, clamped to 1.
func Poisson(intervals int, interval, lambda, jobCost float64, rng *rand.Rand) (Trace, error) {
	if intervals <= 0 || interval <= 0 || lambda < 0 || jobCost <= 0 {
		return nil, fmt.Errorf("trace: invalid poisson parameters")
	}
	if rng == nil {
		return nil, fmt.Errorf("trace: poisson needs a random source")
	}
	tr := make(Trace, intervals)
	for i := range tr {
		n := samplePoisson(rng, lambda*interval)
		u := float64(n) * jobCost / interval
		if u > 1 {
			u = 1
		}
		tr[i] = Point{Start: float64(i) * interval, Duration: interval, Utilization: u}
	}
	return tr, nil
}

// samplePoisson draws from Poisson(mean) via Knuth's method for small means
// and a normal approximation for large ones.
func samplePoisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bursty alternates between a low base demand and high bursts with
// geometrically distributed lengths.
func Bursty(intervals int, interval, base, burst, burstProb float64, rng *rand.Rand) (Trace, error) {
	if intervals <= 0 || interval <= 0 {
		return nil, fmt.Errorf("trace: invalid bursty shape")
	}
	if base < 0 || burst > 1 || base > burst {
		return nil, fmt.Errorf("trace: invalid bursty range [%g, %g]", base, burst)
	}
	if burstProb < 0 || burstProb > 1 {
		return nil, fmt.Errorf("trace: burst probability %g outside [0,1]", burstProb)
	}
	if rng == nil {
		return nil, fmt.Errorf("trace: bursty needs a random source")
	}
	tr := make(Trace, intervals)
	inBurst := false
	for i := range tr {
		if inBurst {
			// Leave the burst with probability 1/2 each interval.
			inBurst = rng.Float64() >= 0.5
		} else {
			inBurst = rng.Float64() < burstProb
		}
		u := base
		if inBurst {
			u = burst
		}
		tr[i] = Point{Start: float64(i) * interval, Duration: interval, Utilization: u}
	}
	return tr, nil
}

// MarkovPhases builds a trace that switches between named demand levels
// with the given per-interval transition probability — a coarse model of
// application phases (§6.6 at the workload level).
func MarkovPhases(intervals int, interval float64, levels []float64, switchProb float64, rng *rand.Rand) (Trace, error) {
	if intervals <= 0 || interval <= 0 || len(levels) == 0 {
		return nil, fmt.Errorf("trace: invalid markov shape")
	}
	for _, l := range levels {
		if l < 0 || l > 1 {
			return nil, fmt.Errorf("trace: level %g outside [0,1]", l)
		}
	}
	if switchProb < 0 || switchProb > 1 {
		return nil, fmt.Errorf("trace: switch probability %g outside [0,1]", switchProb)
	}
	if rng == nil {
		return nil, fmt.Errorf("trace: markov needs a random source")
	}
	tr := make(Trace, intervals)
	state := 0
	for i := range tr {
		if rng.Float64() < switchProb {
			state = rng.Intn(len(levels))
		}
		tr[i] = Point{Start: float64(i) * interval, Duration: interval, Utilization: levels[state]}
	}
	return tr, nil
}

// Constant builds a flat trace.
func Constant(intervals int, interval, utilization float64) (Trace, error) {
	if intervals <= 0 || interval <= 0 {
		return nil, fmt.Errorf("trace: invalid constant shape")
	}
	if utilization < 0 || utilization > 1 {
		return nil, fmt.Errorf("trace: utilization %g outside [0,1]", utilization)
	}
	tr := make(Trace, intervals)
	for i := range tr {
		tr[i] = Point{Start: float64(i) * interval, Duration: interval, Utilization: utilization}
	}
	return tr, nil
}
