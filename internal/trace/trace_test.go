package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiurnalShape(t *testing.T) {
	tr, err := Diurnal(24, 60, 0.3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.TotalDuration() != 24*60 {
		t.Fatalf("duration %g", tr.TotalDuration())
	}
	// Starts at the low level, peaks mid-trace.
	if math.Abs(tr[0].Utilization-0.3) > 1e-12 {
		t.Fatalf("start util %g", tr[0].Utilization)
	}
	if math.Abs(tr[12].Utilization-0.9) > 1e-9 {
		t.Fatalf("midday util %g", tr[12].Utilization)
	}
	for _, p := range tr {
		if p.Utilization < 0.3-1e-12 || p.Utilization > 0.9+1e-12 {
			t.Fatalf("util %g outside range", p.Utilization)
		}
	}
}

func TestDiurnalValidation(t *testing.T) {
	if _, err := Diurnal(0, 1, 0, 1); err == nil {
		t.Fatal("zero intervals must error")
	}
	if _, err := Diurnal(10, 1, 0.8, 0.2); err == nil {
		t.Fatal("low > high must error")
	}
	if _, err := Diurnal(10, 1, 0, 1.5); err == nil {
		t.Fatal("high > 1 must error")
	}
}

func TestPoissonLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// λ = 2 jobs/s, each costing 0.2 s of capacity per second: expected
	// utilization 0.4.
	tr, err := Poisson(500, 1, 2, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := tr.MeanUtilization(); math.Abs(m-0.4) > 0.05 {
		t.Fatalf("mean utilization %g, want ~0.4", m)
	}
}

func TestPoissonClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, err := Poisson(100, 1, 50, 1, rng) // absurd load: clamp at 1
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr {
		if p.Utilization > 1 {
			t.Fatalf("unclamped utilization %g", p.Utilization)
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	if _, err := Poisson(10, 1, 1, 0.1, nil); err == nil {
		t.Fatal("nil rng must error")
	}
	if _, err := Poisson(10, 1, -1, 0.1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("negative lambda must error")
	}
}

func TestSamplePoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mean := range []float64{0.5, 4, 100} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(samplePoisson(rng, mean))
		}
		if got := sum / float64(n); math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("mean %g: sample mean %g", mean, got)
		}
	}
	if samplePoisson(rng, 0) != 0 {
		t.Fatal("zero mean must give zero")
	}
}

func TestBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, err := Bursty(1000, 1, 0.2, 0.9, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	lows, highs := 0, 0
	for _, p := range tr {
		switch p.Utilization {
		case 0.2:
			lows++
		case 0.9:
			highs++
		default:
			t.Fatalf("unexpected level %g", p.Utilization)
		}
	}
	if lows == 0 || highs == 0 {
		t.Fatalf("bursty trace degenerate: %d low, %d high", lows, highs)
	}
	if highs > lows {
		t.Fatalf("bursts dominate (%d vs %d) at 10%% burst probability", highs, lows)
	}
}

func TestBurstyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := Bursty(10, 1, 0.9, 0.2, 0.1, rng); err == nil {
		t.Fatal("base > burst must error")
	}
	if _, err := Bursty(10, 1, 0.1, 0.9, 1.5, rng); err == nil {
		t.Fatal("probability > 1 must error")
	}
	if _, err := Bursty(10, 1, 0.1, 0.9, 0.5, nil); err == nil {
		t.Fatal("nil rng must error")
	}
}

func TestMarkovPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	levels := []float64{0.2, 0.5, 0.8}
	tr, err := MarkovPhases(500, 2, levels, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	switches := 0
	for i, p := range tr {
		seen[p.Utilization] = true
		if i > 0 && tr[i-1].Utilization != p.Utilization {
			switches++
		}
	}
	if len(seen) < 2 {
		t.Fatal("markov trace never switched levels")
	}
	if switches > 100 {
		t.Fatalf("too many switches (%d) for 5%% switch probability", switches)
	}
}

func TestMarkovValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := MarkovPhases(10, 1, nil, 0.1, rng); err == nil {
		t.Fatal("empty levels must error")
	}
	if _, err := MarkovPhases(10, 1, []float64{2}, 0.1, rng); err == nil {
		t.Fatal("level > 1 must error")
	}
	if _, err := MarkovPhases(10, 1, []float64{0.5}, 0.1, nil); err == nil {
		t.Fatal("nil rng must error")
	}
}

func TestConstant(t *testing.T) {
	tr, err := Constant(5, 10, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MeanUtilization() != 0.7 || tr.TotalDuration() != 50 {
		t.Fatalf("constant trace wrong: %+v", tr)
	}
	if _, err := Constant(5, 10, 1.2); err == nil {
		t.Fatal("utilization > 1 must error")
	}
}

func TestValidateCatchesGaps(t *testing.T) {
	tr := Trace{
		{Start: 0, Duration: 1, Utilization: 0.5},
		{Start: 2, Duration: 1, Utilization: 0.5}, // gap at t=1
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("gap must fail validation")
	}
	bad := Trace{{Start: 0, Duration: 0, Utilization: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero duration must fail validation")
	}
}

func TestEmptyTrace(t *testing.T) {
	var tr Trace
	if tr.TotalDuration() != 0 || tr.MeanUtilization() != 0 {
		t.Fatal("empty trace should be zero-valued")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal("empty trace is valid")
	}
}

// TestDegenerateTraces pins TotalDuration and MeanUtilization on traces that
// fail Validate — gaps, overlaps, zero/negative/NaN durations — which crop up
// in hand-built fixtures and partially constructed schedules. Neither
// accessor may return NaN, and duration must be the true maximum end time.
func TestDegenerateTraces(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		name     string
		tr       Trace
		wantDur  float64
		wantMean float64
	}{
		{name: "empty", tr: Trace{}, wantDur: 0, wantMean: 0},
		{name: "single", tr: Trace{{0, 4, 0.5}}, wantDur: 4, wantMean: 0.5},
		{name: "gap", tr: Trace{{0, 1, 0.2}, {5, 1, 0.8}}, wantDur: 6, wantMean: 0.5},
		{
			name: "out-of-order ends",
			// The second point ends before the first: the max end wins, not
			// the last element's end.
			tr:      Trace{{0, 10, 0.1}, {2, 1, 0.9}},
			wantDur: 10, wantMean: (10*0.1 + 1*0.9) / 11,
		},
		{
			name:    "trailing zero-duration marker",
			tr:      Trace{{0, 2, 0.5}, {2, 0, 1}},
			wantDur: 2, wantMean: 0.5,
		},
		{name: "all zero durations", tr: Trace{{0, 0, 1}, {0, 0, 1}}, wantDur: 0, wantMean: 0},
		{
			name:    "NaN duration skipped",
			tr:      Trace{{0, nan, 1}, {1, 2, 0.25}},
			wantDur: 3, wantMean: 0.25,
		},
		{
			name:    "negative duration skipped",
			tr:      Trace{{0, -5, 1}, {0, 4, 0.75}},
			wantDur: 4, wantMean: 0.75,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if d := tc.tr.TotalDuration(); math.IsNaN(d) || math.Abs(d-tc.wantDur) > 1e-12 {
				t.Errorf("TotalDuration = %g, want %g", d, tc.wantDur)
			}
			if u := tc.tr.MeanUtilization(); math.IsNaN(u) || math.Abs(u-tc.wantMean) > 1e-12 {
				t.Errorf("MeanUtilization = %g, want %g", u, tc.wantMean)
			}
		})
	}
}

func TestGeneratorsAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(r.Int31n(50))
		d, err := Diurnal(n, 1+r.Float64()*10, 0.1, 0.9)
		if err != nil || d.Validate() != nil {
			return false
		}
		p, err := Poisson(n, 1, r.Float64()*5, 0.1+r.Float64(), r)
		if err != nil || p.Validate() != nil {
			return false
		}
		bu, err := Bursty(n, 1, 0.1, 0.9, r.Float64(), r)
		if err != nil || bu.Validate() != nil {
			return false
		}
		m, err := MarkovPhases(n, 1, []float64{0.2, 0.8}, r.Float64(), r)
		return err == nil && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
