// Package leo is a Go implementation of LEO (Learning for Energy
// Optimization) from "A Probabilistic Graphical Model-based Approach for
// Minimizing Energy Under Performance Constraints" (Mishra, Zhang, Lafferty,
// Hoffmann — ASPLOS 2015).
//
// LEO estimates an application's power and performance in every
// configuration of a configurable machine from (1) an offline database of
// previously profiled applications and (2) a handful of online observations
// of the running application, using a hierarchical Bayesian model fit with
// EM. The estimates feed a Pareto-hull energy planner and a heartbeat-driven
// runtime controller that completes work by deadlines at near-minimal
// energy.
//
// The package is a facade over the internal implementation:
//
//   - Spaces and configurations       (internal/platform)
//   - Synthetic benchmark suite       (internal/apps)
//   - Machine simulator               (internal/machine)
//   - Profile databases and sampling  (internal/profile)
//   - The LEO model                   (internal/core)
//   - Baseline estimators             (internal/baseline)
//   - Energy planning                 (internal/pareto, internal/lp)
//   - Runtime control                 (internal/control)
//
// A minimal end-to-end use:
//
//	space := leo.PaperSpace()
//	db, _ := leo.CollectProfiles(space, leo.Benchmarks(), 0, nil)
//	rest, truthPerf, _, _ := db.LeaveOneOut(0)
//	est := leo.NewLEOEstimator(rest.Perf, leo.ModelOptions{})
//	mask := leo.RandomMask(space.N(), 20, rng)
//	obs := leo.Observe(truthPerf, mask, 0, nil)
//	pred, _ := est.Estimate(obs.Indices, obs.Values)
//	fmt.Println(leo.Accuracy(pred, truthPerf))
//
// The offline model behind an estimator is a shared, immutable Prior; a
// long-running service fits it once and serves each target application
// through an incremental Session. Sessions accumulate observations across
// control windows, warm-start every refit from the previous posterior, and
// honor context cancellation mid-fit:
//
//	prior, _ := leo.NewModelPrior(rest.Perf, leo.ModelOptions{})
//	est := leo.NewLEOEstimatorFromPrior(prior) // shares the offline fit
//	sess, _ := est.NewSession(ctx)
//	for window := 0; window < 10; window++ {
//	    obs := nextProbes(window)
//	    pred, err := sess.Update(ctx, obs.Indices, obs.Values)
//	    if errors.Is(err, leo.ErrEstimationCanceled) {
//	        return // shutdown: the fit aborted within one EM iteration
//	    }
//	    plan(pred)
//	}
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// experiment-by-experiment reproduction index.
package leo

import (
	"context"
	"io"
	"math/rand"

	"leo/internal/apps"
	"leo/internal/baseline"
	"leo/internal/cluster"
	"leo/internal/colocate"
	"leo/internal/control"
	"leo/internal/core"
	"leo/internal/fault"
	"leo/internal/machine"
	"leo/internal/matrix"
	"leo/internal/pareto"
	"leo/internal/persist"
	"leo/internal/platform"
	"leo/internal/profile"
	"leo/internal/sampling"
	"leo/internal/service"
	"leo/internal/stats"
	"leo/internal/trace"
)

// Platform types.
type (
	// Space is a machine configuration space (threads × speeds × memory
	// controllers).
	Space = platform.Space
	// Config identifies one machine configuration.
	Config = platform.Config
)

// PaperSpace returns the paper's full 1024-configuration platform.
func PaperSpace() Space { return platform.Paper() }

// SmallSpace returns a fast 128-configuration platform with all dimensions
// active.
func SmallSpace() Space { return platform.Small() }

// CoresOnlySpace returns the 32-configuration core-allocation space of the
// paper's motivating example.
func CoresOnlySpace() Space { return platform.CoresOnly() }

// Application types.
type (
	// App is a synthetic application response surface.
	App = apps.App
	// Phase is one workload phase of an App.
	Phase = apps.Phase
	// Input perturbs an application's response surface the way a different
	// dataset would (App.WithInput).
	Input = apps.Input
)

// Benchmarks returns fresh copies of the 25-application benchmark suite.
func Benchmarks() []*App { return apps.Suite() }

// Benchmark returns the named suite application.
func Benchmark(name string) (*App, error) { return apps.ByName(name) }

// BenchmarkNames lists the suite's application names.
func BenchmarkNames() []string { return apps.Names() }

// Profiling types.
type (
	// Database is an offline profiling database (apps × configurations).
	Database = profile.Database
	// Observations pairs sampled configuration indices with measured values.
	Observations = profile.Observations
)

// CollectProfiles profiles applications across a space with optional
// relative measurement noise.
func CollectProfiles(space Space, list []*App, noise float64, rng *rand.Rand) (*Database, error) {
	return profile.Collect(space, list, noise, rng)
}

// LoadDatabase reads a database written with Database.Save.
func LoadDatabase(r io.Reader) (*Database, error) { return profile.Load(r) }

// RandomMask draws k distinct configuration indices uniformly at random.
func RandomMask(n, k int, rng *rand.Rand) []int { return profile.RandomMask(n, k, rng) }

// UniformMask returns k evenly spaced configuration indices.
func UniformMask(n, k int) []int { return profile.UniformMask(n, k) }

// Observe samples truth at the masked indices with optional noise.
func Observe(truth []float64, mask []int, noise float64, rng *rand.Rand) Observations {
	return profile.Observe(truth, mask, noise, rng)
}

// Estimation types.
type (
	// Estimator predicts a metric for every configuration from sparse
	// observations.
	Estimator = baseline.Estimator
	// ModelOptions configures LEO's EM fit.
	ModelOptions = core.Options
	// ModelResult is the full output of one EM fit (estimate plus fitted
	// parameters).
	ModelResult = core.Result
)

// NewLEOEstimator builds LEO over an offline data matrix (one fully profiled
// application per row).
func NewLEOEstimator(known *Matrix, opts ModelOptions) Estimator {
	return baseline.NewLEO(known, opts)
}

// NewOnlineEstimator builds the polynomial-regression baseline for a space.
func NewOnlineEstimator(space Space) Estimator { return baseline.NewOnline(space) }

// NewOfflineEstimator builds the offline (population mean) baseline.
func NewOfflineEstimator(known *Matrix) (Estimator, error) { return baseline.NewOffline(known) }

// NewExhaustiveEstimator wraps a ground-truth vector.
func NewExhaustiveEstimator(truth []float64) Estimator { return baseline.NewExhaustive(truth) }

// NewOracleEstimator wraps a ground-truth source that is re-read on every
// estimate (e.g. phase-dependent truth).
func NewOracleEstimator(fn func() []float64) Estimator { return baseline.NewOracle(fn) }

// FitModel runs LEO's EM directly, returning the fitted parameters along
// with the prediction.
func FitModel(known *Matrix, obsIdx []int, obsVal []float64, opts ModelOptions) (*ModelResult, error) {
	return core.Estimate(known, obsIdx, obsVal, opts)
}

// FitModelContext is FitModel under a caller-supplied context: EM checks the
// context between iterations and aborts with an error wrapping
// ErrEstimationCanceled.
func FitModelContext(ctx context.Context, known *Matrix, obsIdx []int, obsVal []float64, opts ModelOptions) (*ModelResult, error) {
	return core.EstimateContext(ctx, known, obsIdx, obsVal, opts)
}

// Offline/online split types: the Prior is the expensive offline half of the
// model (fit once per database, immutable, safe for concurrent use); Sessions
// are the cheap online half (one per application lifetime, incremental
// observations, warm-started EM).
type (
	// ModelPrior is the immutable offline model shared across sessions.
	ModelPrior = core.Prior
	// ModelSession is one incremental estimation session over a ModelPrior.
	// Not safe for concurrent use; open one per goroutine.
	ModelSession = core.Session
	// EstimatorSession is the estimator-level session interface
	// (Estimator.NewSession); trivial estimators adapt their one-shot
	// Estimate, LEO carries a warm ModelSession.
	EstimatorSession = baseline.Session
)

// ErrEstimationCanceled marks a fit aborted by context cancellation. Errors
// wrap both it and the context's own error; check with errors.Is.
var ErrEstimationCanceled = core.ErrCanceled

// NewModelPrior fits the offline half of the model over a profile matrix.
// The result serves any number of concurrent Estimate calls and Sessions.
func NewModelPrior(known *Matrix, opts ModelOptions) (*ModelPrior, error) {
	return core.NewPrior(known, opts)
}

// NewLEOEstimatorFromPrior builds a LEO estimator over an already-fit Prior,
// sharing it instead of refitting the offline model (leave-one-out sweeps
// build each fold's Prior once this way).
func NewLEOEstimatorFromPrior(prior *ModelPrior) Estimator {
	return baseline.NewLEOFromPrior(prior)
}

// SetKernelWorkers caps the goroutines the linear-algebra kernels fan out
// across, without resizing the whole process's GOMAXPROCS. n <= 0 removes
// the cap. Worker count changes wall-clock time only, never results.
func SetKernelWorkers(n int) { matrix.SetMaxWorkers(n) }

// Matrix is the dense matrix type used for profile data.
type Matrix = matrixType

// Planning types.
type (
	// Plan is a minimal-energy schedule for one (work, deadline) demand.
	Plan = pareto.Plan
	// Allocation is time assigned to one configuration within a Plan.
	Allocation = pareto.Allocation
	// ParetoPoint is one configuration in the power/performance tradeoff
	// space.
	ParetoPoint = pareto.Point
)

// MinimizeEnergy plans the minimal-energy schedule completing w heartbeats
// within t seconds given per-configuration estimates and the idle power.
func MinimizeEnergy(perf, power []float64, idlePower, w, t float64) (*Plan, error) {
	return pareto.MinimizeEnergy(perf, power, idlePower, w, t)
}

// MaximizePerformance solves the dual problem: the fastest time-sharing
// schedule whose average power stays under powerCap (an extension beyond
// the paper's Eq. (1); see §7's discussion of power-capped systems).
func MaximizePerformance(perf, power []float64, idlePower, powerCap, t float64) (*Plan, error) {
	return pareto.MaximizePerformance(perf, power, idlePower, powerCap, t)
}

// ParetoFrontier returns the Pareto-optimal (performance, power) points.
func ParetoFrontier(perf, power []float64) []ParetoPoint { return pareto.Frontier(perf, power) }

// ParetoHull returns the lower convex hull of the tradeoff points.
func ParetoHull(points []ParetoPoint) []ParetoPoint { return pareto.LowerHull(points) }

// Execution types.
type (
	// Machine simulates an application on the configurable platform.
	Machine = machine.Machine
	// Sample is one measured execution window.
	Sample = machine.Sample
	// Controller drives a machine with an estimation policy.
	Controller = control.Controller
	// JobResult summarizes one executed job.
	JobResult = control.JobResult
	// PhasedSpec describes a phased real-time workload.
	PhasedSpec = control.PhasedSpec
	// PhasedResult aggregates a phased run.
	PhasedResult = control.PhasedResult
	// FrameRecord is one frame of a phased run.
	FrameRecord = control.FrameRecord
)

// Fault-injection and resilience types (robustness extension): a seeded
// FaultPlan installed on a Machine injects deterministic sensor/actuation
// faults, and the Controller's degradation ladder (Tier, Resilience)
// tolerates them, accounting everything in a DegradationReport.
type (
	// FaultKind enumerates the injectable fault classes.
	FaultKind = fault.Kind
	// FaultSpec configures per-kind fault rates and a config blacklist.
	FaultSpec = fault.Spec
	// FaultPlan is a deterministic, seeded fault schedule.
	FaultPlan = fault.Plan
	// Tier is one rung of a controller's degradation ladder.
	Tier = control.Tier
	// Resilience tunes the hardened control loop.
	Resilience = control.Resilience
	// DegradationReport accounts for engaged resilience mechanisms.
	DegradationReport = control.DegradationReport
)

// Injectable fault kinds.
const (
	PowerDropout    = fault.PowerDropout
	PowerStuck      = fault.PowerStuck
	SensorSpike     = fault.SensorSpike
	HeartbeatLoss   = fault.HeartbeatLoss
	HeartbeatDup    = fault.HeartbeatDup
	ActuationFail   = fault.ActuationFail
	ActuationDrop   = fault.ActuationDrop
	ConfigBlacklist = fault.ConfigBlacklist
	// Crash/corruption kinds, injected directly by the functions below
	// rather than drawn from a FaultPlan.
	SnapshotBitFlip    = fault.SnapshotBitFlip
	JournalTruncation  = fault.JournalTruncation
	KillBetweenWindows = fault.KillBetweenWindows
)

// NewFaultPlan builds a deterministic fault schedule from a seed and spec.
func NewFaultPlan(seed int64, spec FaultSpec) (*FaultPlan, error) { return fault.New(seed, spec) }

// UniformFaults returns a spec with every probabilistic fault kind firing at
// the given per-event rate.
func UniformFaults(rate float64) FaultSpec { return fault.Uniform(rate) }

// FlipBit flips one seeded-random bit of the file at path (SnapshotBitFlip).
func FlipBit(path string, seed int64) error { return fault.FlipBit(path, seed) }

// TruncateTail cuts the file at path to frac of its length
// (JournalTruncation) — a torn write that lands mid-record.
func TruncateTail(path string, frac float64) error { return fault.TruncateTail(path, frac) }

// CrashPoint deterministically picks the control window, in [1, windows],
// after which a chaos test should kill the process (KillBetweenWindows).
func CrashPoint(seed int64, windows int) int { return fault.CrashPoint(seed, windows) }

// Crash-safe state persistence (robustness extension): a StateStore pairs
// atomic snapshots with a checksummed write-ahead journal so a controller
// restarted after a crash resumes its estimation state — warm posterior,
// ladder rung, and all journaled calibration windows — bit-identically to a
// run that never died. Attach with Controller.AttachStateStore; persist on
// shutdown with Controller.SnapshotState.
type (
	// StateStore persists controller estimation state in one directory.
	StateStore = persist.Store
	// RecoveryReport describes what AttachStateStore reconstructed.
	RecoveryReport = control.RecoveryReport
)

// OpenStateStore opens (creating as needed) a state directory, repairing any
// torn journal tail left by a crash.
func OpenStateStore(dir string) (*StateStore, error) { return persist.Open(dir) }

// Fleet estimation service (leo-runtime -serve). The service multiplexes
// thousands of tenant Sessions over shared class Priors behind an HTTP/JSON
// API, sharded across single-writer workers that coalesce same-Prior refits
// into FitBatch passes. See DESIGN.md §13.
type (
	// ServiceClass is one application class tenants register under: a
	// degradation ladder of estimator tiers plus a default idle power.
	ServiceClass = service.Class
	// ServiceConfig configures an estimation server.
	ServiceConfig = service.Config
	// EstimationServer is the multi-tenant estimation service: serve
	// Handler, stop with Close.
	EstimationServer = service.Server
	// TrafficClass names one application class in a synthetic tenant trace.
	TrafficClass = service.TrafficClass
	// TrafficConfig shapes a synthetic tenant trace.
	TrafficConfig = service.TrafficConfig
	// TrafficEvent is one register/observe/plan event in a tenant trace.
	TrafficEvent = service.Event
)

// Traffic event kinds (TrafficEvent.Kind).
const (
	EvRegisterTraffic = service.EvRegister
	EvObserveTraffic  = service.EvObserve
	EvPlanTraffic     = service.EvPlan
)

// NewEstimationServer builds and starts an estimation server (recovering
// tenant state from ServiceConfig.StateDir when set).
func NewEstimationServer(cfg ServiceConfig) (*EstimationServer, error) { return service.New(cfg) }

// StandardServiceLadder builds the canonical class ladder: LEO over the
// shared priors, then the Online and Offline baselines.
func StandardServiceLadder(space Space, perfPrior, powerPrior *ModelPrior, knownPerf, knownPower *Matrix) ([]Tier, error) {
	return service.StandardLadder(space, perfPrior, powerPrior, knownPerf, knownPower)
}

// GenerateServiceTraffic expands a TrafficConfig into a deterministic,
// time-ordered event stream for load-testing an estimation server.
func GenerateServiceTraffic(cfg TrafficConfig) ([]TrafficEvent, error) {
	return service.GenerateTraffic(cfg)
}

// Cluster-level power budgeting (extension; see DESIGN.md §14). A cluster
// Coordinator owns one global power cap and splits it across simulated nodes
// each running its own LEO controller, rebalancing every epoch from the
// nodes' demand estimates and last epoch's reported overshoot, while a
// replayed tenant trace churns applications across nodes and a rack outage
// schedule takes whole node groups down.
type (
	// ClusterConfig configures one cluster simulation.
	ClusterConfig = cluster.Config
	// ClusterResult aggregates a cluster run: energy, completed work,
	// global-cap violations, and per-node overshoot accounting.
	ClusterResult = cluster.Result
	// ClusterNodeFactory builds a fresh controller and machine when a tenant
	// episode cold-starts on a node.
	ClusterNodeFactory = cluster.NodeFactory
	// RackOutage is one interval during which a whole rack is down.
	RackOutage = fault.RackOutage
	// RackOutages is a rack outage schedule, queryable by rack and time.
	RackOutages = fault.Outages
)

// RunCluster executes a cluster simulation to completion. Runs are serial
// and deterministic: the same config always yields the same result.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Run(cfg) }

// RackOutageSchedule draws a deterministic schedule of correlated rack-level
// outages: per-rack Poisson failure arrivals with exponential repair times,
// seeded so adding racks never perturbs the schedule of existing ones.
func RackOutageSchedule(seed int64, racks int, horizon, meanBetween, meanDown float64) (RackOutages, error) {
	return fault.RackSchedule(seed, racks, horizon, meanBetween, meanDown)
}

// ErrActuation marks a transient, retryable configuration-change failure.
var ErrActuation = machine.ErrActuation

// NewMachine builds a machine simulator for an application.
func NewMachine(space Space, app *App, noise float64, rng *rand.Rand) (*Machine, error) {
	return machine.New(space, app, noise, rng)
}

// NewController builds a runtime controller. Pass nil estimators for the
// race-to-idle heuristic.
func NewController(name string, mach *Machine, estPerf, estPower Estimator, samples int, rng *rand.Rand) (*Controller, error) {
	return control.New(name, mach, estPerf, estPower, samples, rng)
}

// Accuracy computes the paper's Eq. (5) estimation-accuracy metric.
func Accuracy(estimate, truth []float64) float64 { return stats.Accuracy(estimate, truth) }

// Multi-tenant coordination types (extension, §7's Bitirgen direction).
type (
	// Tenant is one co-located application's profile and demand.
	Tenant = colocate.Tenant
	// Assignment is a static thread/clock partition across tenants.
	Assignment = colocate.Assignment
)

// PlanColocation partitions threads and picks the shared clock so every
// tenant meets its rate at minimal combined power.
func PlanColocation(space Space, tenants []Tenant, idlePower float64) (*Assignment, error) {
	return colocate.Plan(space, tenants, idlePower)
}

// ColocationVerifier measures a tenant's true rate at a configuration.
type ColocationVerifier = colocate.Verifier

// PlanColocationVerified plans from estimates, probes the assigned
// configurations, and re-plans on disagreement (up to `rounds` times).
func PlanColocationVerified(space Space, tenants []Tenant, verify ColocationVerifier, idlePower float64, rounds int) (*Assignment, error) {
	return colocate.PlanVerified(space, tenants, verify, idlePower, rounds)
}

// ColocationPower evaluates an assignment under true tenant power profiles.
func ColocationPower(space Space, a *Assignment, tenants []Tenant, idlePower float64) (float64, error) {
	return colocate.CombinedPower(space, a, tenants, idlePower)
}

// ColocationRates evaluates each tenant's rate under an assignment.
func ColocationRates(space Space, a *Assignment, tenants []Tenant) ([]float64, error) {
	return colocate.Rates(space, a, tenants)
}

// Sampling types (extension: active, variance-driven probing).
type (
	// SamplingPolicy selects which configurations to probe online.
	SamplingPolicy = sampling.Policy
	// Measure probes one configuration.
	Measure = sampling.Measure
	// RandomSampling probes uniformly random configurations (the paper's
	// policy, §6.3).
	RandomSampling = sampling.Random
	// UniformSampling probes evenly spaced configurations (§2).
	UniformSampling = sampling.Uniform
	// ActiveSampling greedily probes the highest posterior-variance
	// configuration under the hierarchical model.
	ActiveSampling = sampling.Active
)

// TruthMeasure adapts a ground-truth vector into a Measure with optional
// multiplicative noise.
func TruthMeasure(truth []float64, noise float64, rng *rand.Rand) Measure {
	return sampling.TruthMeasure(truth, noise, rng)
}

// Workload-trace types (utilization generators for driving the controller).
type (
	// Trace is a sequence of utilization intervals.
	Trace = trace.Trace
	// TracePoint is one interval of a Trace.
	TracePoint = trace.Point
)

// DiurnalTrace builds a day-like raised-sine demand curve.
func DiurnalTrace(intervals int, interval, low, high float64) (Trace, error) {
	return trace.Diurnal(intervals, interval, low, high)
}

// PoissonTrace builds demand from Poisson job arrivals.
func PoissonTrace(intervals int, interval, lambda, jobCost float64, rng *rand.Rand) (Trace, error) {
	return trace.Poisson(intervals, interval, lambda, jobCost, rng)
}

// BurstyTrace alternates base demand with geometric bursts.
func BurstyTrace(intervals int, interval, base, burst, burstProb float64, rng *rand.Rand) (Trace, error) {
	return trace.Bursty(intervals, interval, base, burst, burstProb, rng)
}

// MarkovTrace switches between demand levels with a fixed per-interval
// probability.
func MarkovTrace(intervals int, interval float64, levels []float64, switchProb float64, rng *rand.Rand) (Trace, error) {
	return trace.MarkovPhases(intervals, interval, levels, switchProb, rng)
}

// ConstantTrace holds one demand level.
func ConstantTrace(intervals int, interval, utilization float64) (Trace, error) {
	return trace.Constant(intervals, interval, utilization)
}
