package leo_test

import (
	"bytes"
	"math/rand"
	"testing"

	"leo"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README's
// quickstart does: profile, leave one out, sample, estimate, plan, execute.
func TestPublicAPIEndToEnd(t *testing.T) {
	space := leo.SmallSpace()
	if space.N() != 128 {
		t.Fatalf("SmallSpace N = %d", space.N())
	}
	if leo.PaperSpace().N() != 1024 || leo.CoresOnlySpace().N() != 32 {
		t.Fatal("space constructors wrong")
	}

	db, err := leo.CollectProfiles(space, leo.Benchmarks(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumApps() != len(leo.BenchmarkNames()) {
		t.Fatal("database size mismatch")
	}
	target, err := db.AppIndex("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	rest, truePerf, truePower, err := db.LeaveOneOut(target)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	mask := leo.RandomMask(space.N(), 20, rng)
	perfObs := leo.Observe(truePerf, mask, 0.01, rng)

	est := leo.NewLEOEstimator(rest.Perf, leo.ModelOptions{})
	pred, err := est.Estimate(perfObs.Indices, perfObs.Values)
	if err != nil {
		t.Fatal(err)
	}
	if acc := leo.Accuracy(pred, truePerf); acc < 0.9 {
		t.Fatalf("public-API LEO accuracy %g", acc)
	}

	// Planning.
	app, err := leo.Benchmark("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	maxRate := 0.0
	for _, v := range truePerf {
		if v > maxRate {
			maxRate = v
		}
	}
	plan, err := leo.MinimizeEnergy(truePerf, truePower, app.IdlePower, 0.5*maxRate*10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Energy <= 0 || len(plan.Allocations) == 0 {
		t.Fatalf("plan = %+v", plan)
	}

	// Execution.
	mach, err := leo.NewMachine(space, app, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := leo.NewController("LEO", mach,
		leo.NewLEOEstimator(rest.Perf, leo.ModelOptions{}),
		leo.NewLEOEstimator(rest.Power, leo.ModelOptions{}), 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	job, err := ctrl.ExecuteJob(0.5*maxRate*10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !job.MetDeadline {
		t.Fatalf("public-API controller missed deadline: %+v", job)
	}
}

func TestPublicAPIFitModel(t *testing.T) {
	db, err := leo.CollectProfiles(leo.CoresOnlySpace(), leo.Benchmarks(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := db.AppIndex("x264")
	rest, truth, _, err := db.LeaveOneOut(target)
	if err != nil {
		t.Fatal(err)
	}
	mask := leo.UniformMask(32, 8)
	obs := leo.Observe(truth, mask, 0, nil)
	res, err := leo.FitModel(rest.Perf, obs.Indices, obs.Values, leo.ModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Noise <= 0 || len(res.Mu) != 32 || res.Sigma.Rows != 32 {
		t.Fatalf("FitModel result = %+v", res)
	}
}

func TestPublicAPIPowerCap(t *testing.T) {
	app, err := leo.Benchmark("swish")
	if err != nil {
		t.Fatal(err)
	}
	space := leo.SmallSpace()
	perf := app.PerfVector(space)
	power := app.PowerVector(space)
	plan, err := leo.MaximizePerformance(perf, power, app.IdlePower, 150, 10)
	if err != nil {
		t.Fatal(err)
	}
	if avg := plan.TrueEnergy(power, app.IdlePower) / 10; avg > 150+1e-9 {
		t.Fatalf("power cap violated: %g", avg)
	}
	if plan.Work(perf) <= 0 {
		t.Fatal("capped plan should still make progress")
	}
}

func TestPublicAPIParetoHelpers(t *testing.T) {
	perf := []float64{1, 2, 3}
	power := []float64{10, 30, 20}
	front := leo.ParetoFrontier(perf, power)
	if len(front) != 2 {
		t.Fatalf("frontier = %+v", front)
	}
	hull := leo.ParetoHull(front)
	if len(hull) == 0 {
		t.Fatal("empty hull")
	}
}

func TestPublicAPIMatrixAndDatabaseIO(t *testing.T) {
	m := leo.NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("matrix constructor broken")
	}
	if leo.NewMatrix(2, 3).Rows != 2 {
		t.Fatal("NewMatrix broken")
	}

	db, err := leo.CollectProfiles(leo.CoresOnlySpace(), leo.Benchmarks(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := leo.LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumApps() != db.NumApps() {
		t.Fatal("database round trip lost apps")
	}
}

func TestPublicAPICustomApp(t *testing.T) {
	custom := &leo.App{
		Name: "custom", Suite: "test",
		BaseRate: 5, SerialFrac: 0.1, PeakThreads: 10, Contention: 0.2,
		HTBenefit: 0.3, MemIntensity: 0.4, MemCtrlBoost: 0.3, IOFrac: 0.05,
		IdlePower: 80, UncorePower: 10, CorePower: 6, HTPower: 1.5,
		MemPower: 4, FreqExp: 2.5,
	}
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
	space := leo.SmallSpace()
	perf := custom.PerfVector(space)
	power := custom.PowerVector(space)
	if len(perf) != space.N() || len(power) != space.N() {
		t.Fatal("custom app vectors wrong length")
	}
	suite := append(leo.Benchmarks(), custom)
	db, err := leo.CollectProfiles(space, suite, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumApps() != 26 {
		t.Fatalf("custom suite size %d", db.NumApps())
	}
}
