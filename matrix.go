package leo

import "leo/internal/matrix"

// matrixType aliases the internal dense matrix so the public API can expose
// profile databases without leaking the internal import path.
type matrixType = matrix.Matrix

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return matrix.New(rows, cols) }

// NewMatrixFromRows builds a matrix from row slices.
func NewMatrixFromRows(rows [][]float64) *Matrix { return matrix.NewFromRows(rows) }
