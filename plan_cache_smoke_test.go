package leo_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"

	"leo"
)

// TestPlanCacheSmoke boots the real leo-runtime binary in -serve mode and
// drives one tenant through register → observe → plan → observe → plan. It is
// the smoke-level contract behind `make plan-cache-smoke`: each refit must
// advance the plan-cache generation reported on the wire, and every served
// plan — cached or not — must equal a fresh pareto computation over the
// estimates the server itself reports.
func TestPlanCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("plan-cache smoke builds and drives the real binary; skipped in -short")
	}
	bin := runtimeBin(t)

	cmd := exec.Command(bin, "-serve", "-listen", "127.0.0.1:0", "-shards", "1", "-max-sessions", "16")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "serve: listening on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listening line from the server (scan error: %v)", sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	base := "http://" + addr

	// One tenant, two observe windows drawn from the kmeans ground truth.
	space := leo.SmallSpace()
	app, err := leo.Benchmark("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	perfTruth, powerTruth := app.PerfVector(space), app.PowerVector(space)
	post(t, base+"/v1/register", map[string]any{"tenant": "smoke", "class": "kmeans"})

	observe := func(idx []int) {
		perf := make([]float64, len(idx))
		power := make([]float64, len(idx))
		for i, k := range idx {
			perf[i], power[i] = perfTruth[k], powerTruth[k]
		}
		post(t, base+"/v1/observe", map[string]any{
			"tenant": "smoke", "obs_idx": idx, "perf": perf, "power": power,
		})
	}

	const work, deadline = 40.0, 2.0
	planURL := fmt.Sprintf("%s/v1/plan?tenant=smoke&work=%g&deadline=%g", base, work, deadline)

	observe([]int{0, 17, 40, 63, 88, 101, 115, 127})
	gen1, plan1 := fetchPlan(t, planURL)
	checkPlanFresh(t, base, work, deadline, plan1, "after first refit")

	observe([]int{3, 21, 45, 70, 90, 105, 119, 126})
	gen2, plan2 := fetchPlan(t, planURL)
	checkPlanFresh(t, base, work, deadline, plan2, "after second refit")

	if gen2 <= gen1 {
		t.Fatalf("plan-cache generation did not advance across a refit: %d then %d", gen1, gen2)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("server did not exit cleanly after SIGTERM: %v", err)
	}
}

// post issues one JSON POST and requires a 200.
func post(t *testing.T, url string, body map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
	}
}

// wirePlan is the /v1/plan reply shape the smoke cares about.
type wirePlan struct {
	Allocations []leo.Allocation `json:"allocations"`
	IdleTime    float64          `json:"idle_time"`
	Energy      float64          `json:"energy"`
	Rate        float64          `json:"rate"`
	Gen         uint64           `json:"gen"`
}

func fetchPlan(t *testing.T, url string) (uint64, wirePlan) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p wirePlan
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return p.Gen, p
}

// checkPlanFresh recomputes the plan from the estimates the server reports on
// /v1/estimate and requires the served plan to match exactly. JSON renders
// float64 in shortest-round-trip form, so decoded values are bit-identical to
// the server's and the comparison needs no tolerance.
func checkPlanFresh(t *testing.T, base string, work, deadline float64, got wirePlan, when string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/estimate?tenant=smoke")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var est struct {
		Perf      []float64 `json:"perf"`
		Power     []float64 `json:"power"`
		IdlePower float64   `json:"idle_power"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	fresh, err := leo.MinimizeEnergy(est.Perf, est.Power, est.IdlePower, work, deadline)
	if err != nil {
		t.Fatalf("%s: fresh plan over served estimates: %v", when, err)
	}
	if len(fresh.Allocations) != len(got.Allocations) {
		t.Fatalf("%s: served plan has %d allocations, fresh %d", when, len(got.Allocations), len(fresh.Allocations))
	}
	for i, a := range fresh.Allocations {
		if got.Allocations[i] != a {
			t.Fatalf("%s: served allocation %d = %+v, fresh %+v", when, i, got.Allocations[i], a)
		}
	}
	if got.IdleTime != fresh.IdleTime || got.Energy != fresh.Energy || got.Rate != fresh.Rate {
		t.Fatalf("%s: served plan (idle %v, energy %v, rate %v) != fresh (%v, %v, %v)",
			when, got.IdleTime, got.Energy, got.Rate, fresh.IdleTime, fresh.Energy, fresh.Rate)
	}
}
