package leo_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"leo"
)

// TestServeSmoke boots the real leo-runtime binary in -serve mode, drives a
// ~50-tenant synthetic fleet through the HTTP API, then sends SIGTERM and
// requires a clean drain: exit code 0, the drained marker on stdout, and one
// snapshot per shard in the state directory. It is the smoke-level contract
// behind `make serve-smoke`.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve smoke builds and drives the real binary; skipped in -short")
	}
	bin := runtimeBin(t)
	dir := t.TempDir()

	cmd := exec.Command(bin,
		"-serve", "-listen", "127.0.0.1:0", "-shards", "2", "-max-sessions", "128",
		"-state-dir", dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The readiness handshake: the bound address is printed once the
	// listener is up. Collect the rest of stdout in the background for the
	// post-SIGTERM assertions.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "serve: listening on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listening line from the server (scan error: %v)", sc.Err())
	}
	tail := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteByte('\n')
		}
		tail <- rest.String()
	}()
	base := "http://" + addr

	// A 50-tenant fleet, one simulated second of windows with piggybacked
	// plan requests. Replayed sequentially, so per-tenant ordering is free.
	space := leo.SmallSpace()
	app, err := leo.Benchmark("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	events, err := leo.GenerateServiceTraffic(leo.TrafficConfig{
		Seed:    11,
		Tenants: 50,
		Classes: []leo.TrafficClass{
			{Name: "kmeans", PerfTruth: app.PerfVector(space), PowerTruth: app.PowerVector(space)},
		},
		MeanRate:        1,
		Duration:        1,
		ProbesPerWindow: 12,
		Noise:           0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := issueSmokeEvent(base, ev); err != nil {
			t.Fatalf("event %+v: %v", ev.Kind, err)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("server did not exit cleanly after SIGTERM: %v", err)
	}
	out := <-tail
	if !strings.Contains(out, "serve: drained") {
		t.Errorf("no drained marker on stdout after SIGTERM:\n%s", out)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "shard-*", "snapshot.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("found %d shard snapshots after drain, want 2: %v", len(snaps), snaps)
	}
}

// issueSmokeEvent performs one traffic event against the live server,
// honoring 429 backpressure with a short retry loop.
func issueSmokeEvent(base string, ev leo.TrafficEvent) error {
	for attempt := 0; ; attempt++ {
		var (
			resp *http.Response
			err  error
		)
		switch ev.Kind {
		case leo.EvRegisterTraffic:
			body, _ := json.Marshal(map[string]any{"tenant": ev.Tenant, "class": ev.Class})
			resp, err = http.Post(base+"/v1/register", "application/json", bytes.NewReader(body))
		case leo.EvObserveTraffic:
			body, _ := json.Marshal(map[string]any{
				"tenant": ev.Tenant, "obs_idx": ev.ObsIdx, "perf": ev.Perf, "power": ev.Power,
			})
			resp, err = http.Post(base+"/v1/observe", "application/json", bytes.NewReader(body))
		case leo.EvPlanTraffic:
			resp, err = http.Get(fmt.Sprintf("%s/v1/plan?tenant=%s&work=%g&deadline=%g",
				base, ev.Tenant, ev.Work, ev.Deadline))
		default:
			return fmt.Errorf("unknown event kind %v", ev.Kind)
		}
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 100 {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s %s: %d %s", ev.Tenant, ev.Class, resp.StatusCode, raw)
		}
		return nil
	}
}
